"""System-level performance model: per-node memory environments and GEMM timing.

This module glues the substrates together for the evaluation sweeps: it
derives the :class:`~repro.mmae.dataflow.MemoryEnvironment` one compute node
sees when ``active_nodes`` nodes are streaming simultaneously (L3 capacity
share, DRAM bandwidth share, queueing-inflated round-trip latencies, NoC link
contention) and wraps :func:`~repro.mmae.dataflow.estimate_gemm_timing` with
the system configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import MACOConfig
from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape
from repro.mem.dram import DRAMModel
from repro.mmae.dataflow import (
    GEMMTimingBreakdown,
    MemoryEnvironment,
    estimate_gemm_timing,
)
from repro.noc.contention import NocContentionModel


def memory_environment(config: MACOConfig, active_nodes: int) -> MemoryEnvironment:
    """The memory system as seen by one node when ``active_nodes`` nodes are busy.

    * **L3 share** — the distributed system cache is shared, so each active
      node can keep roughly ``total / active_nodes`` bytes resident.
    * **DRAM share** — the DDR controllers' effective bandwidth (which erodes
      slightly as stream count grows) divided among the active nodes.
    * **Round-trip latencies** — the base L3/DRAM latencies plus a queueing
      term that grows with the number of active nodes contending at the CCMs
      and memory controllers; the latency-limited DMA engines turn this
      directly into lower sustained bandwidth.
    """
    if not 1 <= active_nodes <= config.num_nodes:
        raise ValueError(f"active_nodes must be in 1..{config.num_nodes}, got {active_nodes}")
    memory = config.memory
    dram = DRAMModel(config=memory.dram)
    dram_share = dram.effective_bandwidth(active_nodes) / active_nodes
    queue_ns = memory.queue_ns_per_active_node * (active_nodes - 1)
    return MemoryEnvironment(
        l3_share_bytes=memory.l3_total_bytes / active_nodes,
        dram_bandwidth_share_bytes_per_s=dram_share,
        noc_node_bandwidth_bytes_per_s=config.noc.node_bandwidth_bytes_per_s,
        l3_round_trip_ns=memory.l3_round_trip_ns + queue_ns,
        dram_round_trip_ns=memory.dram_round_trip_ns + queue_ns,
    )


def estimate_node_gemm(
    config: MACOConfig,
    shape: GEMMShape,
    active_nodes: int = 1,
    prediction_enabled: Optional[bool] = None,
    env: Optional[MemoryEnvironment] = None,
) -> GEMMTimingBreakdown:
    """Timing of one GEMM executed by one MMAE under the given system load."""
    if prediction_enabled is None:
        prediction_enabled = config.prediction_enabled
    if env is None:
        env = memory_environment(config, active_nodes)
    return estimate_gemm_timing(
        shape,
        level1=config.level1_tile,
        level2=config.level2_tile,
        params=config.mmae.timing_parameters(),
        env=env,
        prediction_enabled=prediction_enabled,
        page_size=config.memory.page_size,
    )


def node_peak_gflops(config: MACOConfig, precision: Precision) -> float:
    """Theoretical peak of a single MMAE for a precision."""
    return {
        Precision.FP64: config.mmae.peak_gflops_fp64,
        Precision.FP32: config.mmae.peak_gflops_fp32,
        Precision.FP16: config.mmae.peak_gflops_fp16,
    }[precision]


@dataclass
class EfficiencyPoint:
    """One point of an efficiency sweep (Figs. 6 and 7)."""

    matrix_size: int
    active_nodes: int
    prediction_enabled: bool
    efficiency: float
    gflops: float
    seconds: float


def sweep_prediction(
    config: MACOConfig,
    sizes: List[int],
    precision: Precision = Precision.FP64,
) -> List[EfficiencyPoint]:
    """The Fig. 6 sweep: single node, with and without predictive translation."""
    points = []
    for prediction in (False, True):
        for size in sizes:
            shape = GEMMShape(size, size, size, precision)
            timing = estimate_node_gemm(config, shape, active_nodes=1, prediction_enabled=prediction)
            points.append(
                EfficiencyPoint(
                    matrix_size=size,
                    active_nodes=1,
                    prediction_enabled=prediction,
                    efficiency=timing.efficiency,
                    gflops=timing.achieved_gflops,
                    seconds=timing.seconds,
                )
            )
    return points


def sweep_scalability(
    config: MACOConfig,
    sizes: List[int],
    node_counts: List[int],
    precision: Precision = Precision.FP64,
) -> List[EfficiencyPoint]:
    """The Fig. 7 sweep: independent GEMMs on 1..16 nodes, per-node efficiency."""
    points = []
    for nodes in node_counts:
        for size in sizes:
            shape = GEMMShape(size, size, size, precision)
            timing = estimate_node_gemm(config, shape, active_nodes=nodes)
            points.append(
                EfficiencyPoint(
                    matrix_size=size,
                    active_nodes=nodes,
                    prediction_enabled=config.prediction_enabled,
                    efficiency=timing.efficiency,
                    gflops=timing.achieved_gflops * nodes,
                    seconds=timing.seconds,
                )
            )
    return points


def noc_contention_model(config: MACOConfig) -> NocContentionModel:
    """The transaction-independent NoC contention model for this configuration."""
    return NocContentionModel(config=config.noc, dram=DRAMModel(config=config.memory.dram))
