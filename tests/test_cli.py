"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gemm_defaults(self):
        args = build_parser().parse_args(["gemm"])
        assert args.size == 4096
        assert args.nodes == 16
        assert args.precision == "fp64"
        assert not args.no_prediction

    def test_fig8_node_override(self):
        args = build_parser().parse_args(["fig8", "--nodes", "16"])
        assert args.nodes == 16


class TestCommands:
    def test_gemm_command_reports_throughput(self, capsys):
        assert main(["gemm", "--size", "1024", "--nodes", "2"]) == 0
        output = capsys.readouterr().out
        assert "GFLOPS" in output
        assert "2 nodes" in output

    def test_gemm_without_prediction(self, capsys):
        assert main(["gemm", "--size", "1024", "--nodes", "1", "--no-prediction"]) == 0
        assert "GFLOPS" in capsys.readouterr().out

    def test_fig6_command(self, capsys):
        assert main(["fig6"]) == 0
        output = capsys.readouterr().out
        assert "with prediction" in output
        assert "9216" in output

    def test_table4_command(self, capsys):
        assert main(["table4"]) == 0
        output = capsys.readouterr().out
        assert "MMAE" in output
        assert "area_efficiency_gain" in output

    def test_fig7_command(self, capsys):
        assert main(["fig7"]) == 0
        output = capsys.readouterr().out
        assert "16-core" in output
