"""Setup script for the MACO reproduction package.

The pyproject.toml carries the project metadata; this setup.py exists so the
package can be installed editable (``pip install -e .``) in offline
environments where pip cannot fetch the ``wheel`` build dependency needed by
the PEP 660 editable-wheel path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of MACO: Exploring GEMM Acceleration on a "
        "Loosely-Coupled Multi-Core Processor (DATE 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
