"""MACO core: configuration, compute nodes, the full system, mapping and runtime.

This package is the paper's primary contribution assembled from the substrate
packages.  Typical entry points:

* :func:`maco_default_config` / :class:`MACOConfig` — configure a system;
* :class:`MACOSystem` — run GEMMs, scalability sweeps and DL workloads;
* :class:`MACORuntime` — the NumPy-level software API over MPAIS;
* :mod:`repro.core.perf` — the per-node performance model used by the sweeps;
* :class:`SweepRunner` / :class:`DesignSpaceExplorer` — parallel, cached
  sweep and design-space campaigns (``repro.cli explore``);
* :mod:`repro.serve` builds on all of the above for multi-tenant serving
  scenarios (``repro.cli serve``).
"""

from repro.core.config import (
    CPUConfig,
    MMAEConfig,
    MemoryConfig,
    MACOConfig,
    maco_default_config,
)
from repro.core.compute_node import ComputeNode, GEMMSubmission
from repro.core.maco import MACOSystem
from repro.core.mapping import (
    MappingPlan,
    NodeAssignment,
    GemmPlusSchedule,
    partition_gemm,
    partition_workload,
    schedule_gemm_plus,
)
from repro.core.metrics import (
    NodeResult,
    SystemResult,
    WorkloadResult,
    speedup,
    geometric_mean,
    average_efficiency,
)
from repro.core.perf import (
    DEFAULT_TIMING_CACHE,
    EfficiencyPoint,
    TimingCache,
    config_fingerprint,
    estimate_node_gemm,
    estimate_node_gemm_cached,
    memory_environment,
    noc_contention_model,
    node_peak_gflops,
    sweep_prediction,
    sweep_scalability,
    unmapped_memory_environment,
)
from repro.core.runtime import MACORuntime, AsyncHandle
from repro.core.batch import SweepRunner
from repro.core.explorer import (
    DesignPoint,
    DesignSpaceExplorer,
    EvaluationResult,
    GraphEvaluationResult,
    PhaseResult,
    pareto_front,
)

__all__ = [
    "DesignPoint",
    "DesignSpaceExplorer",
    "EvaluationResult",
    "GraphEvaluationResult",
    "PhaseResult",
    "pareto_front",
    "CPUConfig",
    "MMAEConfig",
    "MemoryConfig",
    "MACOConfig",
    "maco_default_config",
    "ComputeNode",
    "GEMMSubmission",
    "MACOSystem",
    "MappingPlan",
    "NodeAssignment",
    "GemmPlusSchedule",
    "partition_gemm",
    "partition_workload",
    "schedule_gemm_plus",
    "NodeResult",
    "SystemResult",
    "WorkloadResult",
    "speedup",
    "geometric_mean",
    "average_efficiency",
    "DEFAULT_TIMING_CACHE",
    "EfficiencyPoint",
    "SweepRunner",
    "TimingCache",
    "config_fingerprint",
    "estimate_node_gemm",
    "estimate_node_gemm_cached",
    "memory_environment",
    "noc_contention_model",
    "node_peak_gflops",
    "sweep_prediction",
    "sweep_scalability",
    "unmapped_memory_environment",
    "MACORuntime",
    "AsyncHandle",
]
