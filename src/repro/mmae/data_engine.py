"""The Accelerator Data Engine (ADE).

The ADE owns the MMAE's two DMA engines and is responsible for moving tile
data between the L3 system cache and the A/B/C scratchpad buffers (paper
Fig. 2(a)).  For the functional execution path it also performs the actual
NumPy sub-block reads/writes against the :class:`~repro.mem.hostmem.HostMemory`
view, translating virtual addresses through the mATLB (predictive path) or the
shared MMU (demand path) so the tests exercise the same translation machinery
the timing model charges for.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.gemm.tiling import Tile
from repro.isa.instructions import GEMMDescriptor
from repro.mem.hostmem import HostMemory
from repro.mem.page_table import PageFaultError
from repro.mmae.buffers import BufferSet
from repro.mmae.dma import DMAEngine
from repro.mmae.matlb import MATLB, MatrixLayout


@dataclass
class TileTransferPlan:
    """Byte volumes a second-level tile moves through the DMA engines."""

    a_bytes: int
    b_bytes: int
    c_read_bytes: int
    c_write_bytes: int

    @property
    def load_bytes(self) -> int:
        return self.a_bytes + self.b_bytes + self.c_read_bytes

    @property
    def total_bytes(self) -> int:
        return self.load_bytes + self.c_write_bytes


class AcceleratorDataEngine:
    """Schedules tile transfers over the MMAE's DMA engines."""

    def __init__(
        self,
        buffers: Optional[BufferSet] = None,
        num_engines: int = 2,
        frequency_hz: float = 2.5e9,
        matlb: Optional[MATLB] = None,
    ) -> None:
        if num_engines <= 0:
            raise ValueError("the ADE needs at least one DMA engine")
        self.buffers = buffers if buffers is not None else BufferSet()
        self.engines: List[DMAEngine] = [
            DMAEngine(engine_id=index, frequency_hz=frequency_hz) for index in range(num_engines)
        ]
        self.matlb = matlb if matlb is not None else MATLB()
        self.translation_stall_cycles = 0
        self.demand_translations = 0

    # ------------------------------------------------------------------ planning
    @staticmethod
    def plan_tile(tile: Tile, element_bytes: int, accumulate: bool) -> TileTransferPlan:
        """Transfer plan for one second-level tile.

        ``accumulate`` is True when the C tile holds partial sums from a
        previous K block and must therefore be read before the MACs and written
        back afterwards; the first K block only writes.
        """
        a_bytes = tile.rows * tile.depth * element_bytes
        b_bytes = tile.depth * tile.cols * element_bytes
        c_bytes = tile.rows * tile.cols * element_bytes
        return TileTransferPlan(
            a_bytes=a_bytes,
            b_bytes=b_bytes,
            c_read_bytes=c_bytes if accumulate else 0,
            c_write_bytes=c_bytes,
        )

    def transfer_cycles(self, plan: TileTransferPlan, round_trip_latency_cycles: float = 0.0) -> int:
        """Cycles to move a tile's data, splitting the load across both engines."""
        per_engine = plan.total_bytes / len(self.engines)
        results = [
            engine.transfer(int(round(per_engine)), round_trip_latency_cycles)
            for engine in self.engines
        ]
        return max(result.total_cycles for result in results)

    # ----------------------------------------------------------------- functional
    def load_operands(
        self,
        memory: HostMemory,
        descriptor: GEMMDescriptor,
        tile: Tile,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Read the A, B and C sub-blocks of a tile from host memory."""
        a = memory.matrix_at(descriptor.addr_a)
        b = memory.matrix_at(descriptor.addr_b)
        c = memory.matrix_at(descriptor.addr_c)
        a_block = a[tile.row_start : tile.row_end, tile.k_start : tile.k_end]
        b_block = b[tile.k_start : tile.k_end, tile.col_start : tile.col_end]
        c_block = c[tile.row_start : tile.row_end, tile.col_start : tile.col_end]
        return a_block, b_block, c_block

    def store_result(
        self,
        memory: HostMemory,
        descriptor: GEMMDescriptor,
        tile: Tile,
        values: np.ndarray,
    ) -> None:
        """Write a computed C sub-block back to host memory in the C matrix's dtype."""
        c = memory.matrix_at(descriptor.addr_c)
        c[tile.row_start : tile.row_end, tile.col_start : tile.col_end] = values.astype(c.dtype)

    # ---------------------------------------------------------------- translation
    def translate_tile(
        self,
        mmu,
        asid: int,
        layout: MatrixLayout,
        tile_rows: Tuple[int, int],
        tile_cols: Tuple[int, int],
        prediction_enabled: bool,
    ) -> int:
        """Translate every page a tile touches; returns the exposed stall cycles.

        With prediction the mATLB pre-walks the pages (walk cycles are treated
        as hidden) and the demand lookups hit; without prediction each page
        missing from the mATLB costs a demand walk through the shared MMU.
        """
        row_start, row_count = tile_rows
        col_start, col_count = tile_cols
        pages = self.matlb.predictor.tile_page_addresses_scalar(
            layout, row_start, row_count, col_start, col_count
        )
        stall_cycles = 0
        if prediction_enabled:
            self.matlb.prewalk_pages(mmu, asid, pages)
        for page_vaddr in pages:
            if self.matlb.lookup(page_vaddr) is None:
                result = mmu.translate_data(asid, page_vaddr)
                self.demand_translations += 1
                stall_cycles += result.cycles
        self.translation_stall_cycles += stall_cycles
        return stall_cycles

    def translate_tile_batch(
        self,
        mmu,
        asid: int,
        layout: MatrixLayout,
        tile_rows: Tuple[int, int],
        tile_cols: Tuple[int, int],
        prediction_enabled: bool,
    ) -> int:
        """Batched :meth:`translate_tile`: one prewalk and one demand stream per tile.

        Bit-identical to the scalar loop — the same pages in the same access
        order reach the mATLB and the MMU, and every hit/miss/prewalk/walk
        counter advances identically (the scalar loop interleaves mATLB lookups
        with demand MMU translations, but the two never touch each other's
        state, so splitting them into two batched passes preserves every
        outcome).  A page fault on the demand path propagates at the same page
        with the same partial counter updates as the scalar loop.
        """
        row_start, row_count = tile_rows
        col_start, col_count = tile_cols
        pages = self.matlb.predictor.tile_page_vaddrs(
            layout, row_start, row_count, col_start, col_count
        )
        page_list = pages.tolist()
        if self.matlb.buffer_matches(page_list):
            # Steady-state reuse tile: the prewalk skips every page (no stats,
            # no LRU change) and the lookup stream hits every page while
            # leaving the LRU order exactly as it is, so the whole pass
            # reduces to the bulk hit count with zero stall cycles.
            self.matlb.stats.hits += len(page_list)
            return 0
        if prediction_enabled:
            self.matlb.prewalk_pages_batch(mmu, asid, pages)
        # Snapshot the mATLB's lookup-visible state so the (in practice dead)
        # demand-fault path below can rewind to exactly what the scalar loop
        # would have touched; lookups never change membership or values, so
        # the key order plus the two counters is the whole state.
        matlb_entries = self.matlb._entries
        lru_snapshot = list(matlb_entries.keys())
        stats_snapshot = (self.matlb.stats.hits, self.matlb.stats.misses)
        paddrs = self.matlb.lookup_batch(pages)
        missing = pages[paddrs < 0]
        stall_cycles = 0
        if missing.size:
            if not mmu.mapped_mask(asid, missing).all():
                self._demand_fault(mmu, asid, page_list, missing, lru_snapshot, stats_snapshot)
            demand = mmu.translate_data_batch(asid, missing)
            self.demand_translations += int(missing.size)
            stall_cycles = int(demand.cycles.sum())
        self.translation_stall_cycles += stall_cycles
        return stall_cycles

    def _demand_fault(self, mmu, asid, page_list, missing, lru_snapshot, stats_snapshot):
        """Replay the scalar loop's partial progress for a faulting demand page.

        The scalar loop stops at the first mATLB-missing page that faults: mATLB
        lookups (stats + LRU refreshes) cover only the pages up to and including
        the faulter, demand translations cover only the missing pages before it.
        The batched lookup above already touched every page, so rewind the mATLB
        to the snapshot, replay the prefix, and let the batched demand
        translation raise at the faulter with exact MMU-side partial stats.
        """
        matlb = self.matlb
        matlb._entries = OrderedDict(
            (page, matlb._entries[page]) for page in lru_snapshot
        )
        matlb.stats.hits, matlb.stats.misses = stats_snapshot
        missing_list = missing.tolist()
        fault_index = next(
            index for index, mapped in enumerate(mmu.mapped_mask(asid, missing).tolist())
            if not mapped
        )
        cutoff = page_list.index(missing_list[fault_index])
        matlb.lookup_batch(page_list[: cutoff + 1])
        try:
            mmu.translate_data_batch(asid, missing_list[: fault_index + 1])
        except PageFaultError as error:
            self.demand_translations += getattr(error, "batch_processed", 1) - 1
            raise
        raise RuntimeError("unreachable: an unmapped demand page must fault")

    @property
    def total_bytes_transferred(self) -> int:
        return sum(engine.bytes_transferred for engine in self.engines)
