"""Property-based scenario fuzzing over the simulator's global invariants.

Rather than pinning specific outputs (the golden corpus does that), this
layer samples *scenarios* — workload-graph shapes, catalog parameters, serve
and parallel configurations — under their validity constraints and asserts
the properties the repo stakes out as exact:

* ``graph-roundtrip`` — ``WorkloadGraph`` JSON serialisation is lossless;
* ``catalog-build`` — catalog builds are deterministic and their aggregate
  FLOP/byte accounting is internally consistent;
* ``tp-conservation`` — with communication zeroed, tensor-parallel per-node
  compute seconds sum to the unsharded phase (rel 1e-9), and ``tp:1`` is
  bit-identical to the unsharded timing;
* ``tp2d-conservation`` — the SUMMA grid's per-node compute seconds sum to
  the unsharded phase (rel 1e-9), ``tp2d:1x1`` is bit-identical to the
  unsharded timing, the overlap split is well-formed
  (``0 <= overlapped <= comm``), and no phase is slower than serial
  compute + serial comm (overlap can only help);
* ``serve-parity`` — scalar and array serve engines emit byte-identical
  ``to_json`` reports across schedulers × batching modes × seeds × fleets;
* ``serve-shards`` — the sharded request-level run merges back to the exact
  single-shard report for any shard count and worker-pool size;
* ``autoscale-invariants`` — the elastic step-mode fleet stays within
  ``[min_groups, max_groups]`` at every timeline instant, every scale event
  conserves capacity (``groups_after == groups_before ± 1``, provisioning
  delay and drain-stop times well-formed, the fleet timeline reconstructs
  exactly from the event stream), draining groups admit nothing, sharded and
  pooled runs are byte-identical to the single-shard report, and a
  ``min_groups == max_groups`` policy is byte-identical to the fixed-fleet
  path once the ``autoscale`` section is stripped;
* ``percentile`` — the ``np.partition`` fast path is bit-identical to the
  sorted nearest-rank reference on either side of the size threshold;
* ``trace-roundtrip`` — vectorized trace generators match their scalar twins
  element for element and traces survive a records round-trip.

Everything is seeded stdlib :mod:`random` (no new dependency): case ``i`` of
run seed ``S`` draws from ``random.Random(f"{S}:{i}")``, and kinds rotate
round-robin, so ``fuzz(cases=200, seed=0)`` replays the same 200 scenarios on
every machine.  A failing scenario is greedily shrunk toward the smallest
parameter set that still fails and reported as a replayable JSON spec
(``python -m repro.cli conformance replay failure.json``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SCENARIO_KINDS",
    "FuzzReport",
    "ScenarioFailure",
    "ScenarioResult",
    "ScenarioSpec",
    "fuzz",
    "replay",
    "run_scenario",
]


class ScenarioFailure(AssertionError):
    """A sampled scenario violated one of the exact invariants."""


@dataclass(frozen=True)
class ScenarioSpec:
    """One concrete fuzz scenario: a kind plus its sampled parameters."""

    kind: str
    params: Tuple = ()  # tuple of (name, value) pairs, sorted by name

    def param(self, key: str) -> object:
        for name, value in self.params:
            if name == key:
                return value
        raise KeyError(f"scenario {self.kind!r} has no parameter {key!r}")

    def to_dict(self) -> dict:
        return {
            "type": "fuzz",
            "kind": self.kind,
            "params": {key: value for key, value in self.params},
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "ScenarioSpec":
        try:
            return cls(
                kind=str(record["kind"]),
                params=tuple(sorted(dict(record["params"]).items())),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"malformed fuzz scenario record: {error}") from error


def _spec(kind: str, **params) -> ScenarioSpec:
    return ScenarioSpec(kind=kind, params=tuple(sorted(params.items())))


# Shared, lazily-built fixtures.  The timing cache makes the tp-conservation
# scenarios cheap (catalog phases re-use identical GEMM shapes heavily), and
# sharing the config keeps every scenario on the same deterministic fleet.
_SHARED: dict = {}


def _shared_config(num_nodes: int = 16):
    from repro.core import maco_default_config

    key = ("config", num_nodes)
    if key not in _SHARED:
        _SHARED[key] = maco_default_config(num_nodes=num_nodes)
    return _SHARED[key]


def _shared_cache():
    from repro.core.perf import TimingCache

    if "cache" not in _SHARED:
        _SHARED["cache"] = TimingCache()
    return _SHARED["cache"]


def _catalog_names() -> List[str]:
    from repro.workloads import workload_catalog

    if "catalog" not in _SHARED:
        _SHARED["catalog"] = workload_catalog()
    return _SHARED["catalog"]


def _tenants(count: int, rate: float, slo: bool):
    from repro.serve import default_tenants

    specs = [spec.with_rate(rate) for spec in default_tenants(count)]
    if slo:
        specs = [
            spec.with_slo(ttft_slo_s=0.4 + 0.2 * index, tpot_slo_s=0.05,
                          priority=index % 2)
            for index, spec in enumerate(specs)
        ]
    return specs


# ---------------------------------------------------------- graph-roundtrip
def _sample_graph_roundtrip(rng: random.Random) -> ScenarioSpec:
    return _spec(
        "graph-roundtrip",
        workload=rng.choice(_catalog_names()),
        precision=rng.choice(["fp64", "fp32", "fp16"]),
    )


def _check_graph_roundtrip(spec: ScenarioSpec) -> None:
    from repro.gemm.precision import Precision
    from repro.workloads import WorkloadGraph, workload_graph_by_name

    graph = workload_graph_by_name(
        str(spec.param("workload")), Precision.from_string(str(spec.param("precision")))
    )
    text = graph.to_json()
    rebuilt = WorkloadGraph.from_json(text)
    if rebuilt.to_json() != text:
        raise ScenarioFailure(
            f"{spec.param('workload')}: to_json -> from_json -> to_json is not "
            "a fixed point"
        )
    if rebuilt.to_dict() != graph.to_dict():
        raise ScenarioFailure(
            f"{spec.param('workload')}: JSON round-trip changed the graph record"
        )


# ------------------------------------------------------------ catalog-build
def _sample_catalog_build(rng: random.Random) -> ScenarioSpec:
    return _spec(
        "catalog-build",
        workload=rng.choice(_catalog_names()),
        precision=rng.choice(["fp64", "fp32", "fp16"]),
    )


def _check_catalog_build(spec: ScenarioSpec) -> None:
    from repro.gemm.precision import Precision
    from repro.workloads import workload_graph_by_name

    name = str(spec.param("workload"))
    precision = Precision.from_string(str(spec.param("precision")))
    graph = workload_graph_by_name(name, precision)
    again = workload_graph_by_name(name, precision)
    if graph.to_json() != again.to_json():
        raise ScenarioFailure(f"{name}: catalog build is not deterministic")
    expected_gemm = sum(phase.total_gemm_flops for phase in graph.phases)
    if graph.gemm_flops != expected_gemm:
        raise ScenarioFailure(
            f"{name}: graph.gemm_flops {graph.gemm_flops} != phase sum {expected_gemm}"
        )
    if graph.total_flops != graph.gemm_flops + graph.non_gemm_flops:
        raise ScenarioFailure(f"{name}: total_flops does not decompose")
    flat = graph.flatten()
    expected_shapes = sum(len(phase.shapes) * phase.repeat for phase in graph.phases)
    if len(flat.shapes) != expected_shapes:
        raise ScenarioFailure(
            f"{name}: flatten() produced {len(flat.shapes)} shapes, "
            f"expected {expected_shapes}"
        )


# ---------------------------------------------------------- tp-conservation
def _sample_tp_conservation(rng: random.Random) -> ScenarioSpec:
    return _spec(
        "tp-conservation",
        workload=rng.choice(_catalog_names()),
        precision=rng.choice(["fp32", "fp16"]),
        degree=rng.randint(2, 4),
    )


def _check_tp_conservation(spec: ScenarioSpec) -> None:
    from repro.gemm.precision import Precision
    from repro.parallel import ParallelismSpec, plan_parallel
    from repro.workloads import workload_graph_by_name

    graph = workload_graph_by_name(
        str(spec.param("workload")), Precision.from_string(str(spec.param("precision")))
    )
    config = _shared_config()
    cache = _shared_cache()
    degree = int(spec.param("degree"))
    plan = plan_parallel(graph, config, ParallelismSpec("tp", degree),
                         cache=cache, include_communication=False)
    for phase_plan in plan.phases:
        if phase_plan.comm_seconds != 0.0:
            raise ScenarioFailure(
                f"{graph.name} tp:{degree}: communication charged with collectives zeroed"
            )
        total = sum(phase_plan.node_compute_seconds)
        reference = phase_plan.unsharded_seconds
        if abs(total - reference) > 1e-9 * max(abs(reference), 1e-30):
            raise ScenarioFailure(
                f"{graph.name} tp:{degree}: per-node compute {total!r} does not "
                f"conserve the unsharded phase {reference!r}"
            )
    one = plan_parallel(graph, config, "tp:1", cache=cache)
    if one.total_seconds != one.unsharded_seconds:
        raise ScenarioFailure(f"{graph.name}: tp:1 total differs from unsharded timing")
    for phase_plan in one.phases:
        if phase_plan.node_compute_seconds != (phase_plan.unsharded_seconds,):
            raise ScenarioFailure(
                f"{graph.name}: tp:1 phase {phase_plan.phase!r} is not bit-identical "
                "to the unsharded phase"
            )


# -------------------------------------------------------- tp2d-conservation
def _sample_tp2d_conservation(rng: random.Random) -> ScenarioSpec:
    return _spec(
        "tp2d-conservation",
        workload=rng.choice(_catalog_names()),
        precision=rng.choice(["fp32", "fp16"]),
        rows=rng.randint(1, 3),
        cols=rng.randint(1, 3),
    )


def _check_tp2d_conservation(spec: ScenarioSpec) -> None:
    from repro.gemm.precision import Precision
    from repro.parallel import ParallelismSpec, plan_parallel
    from repro.workloads import workload_graph_by_name

    graph = workload_graph_by_name(
        str(spec.param("workload")), Precision.from_string(str(spec.param("precision")))
    )
    config = _shared_config()
    cache = _shared_cache()
    rows = int(spec.param("rows"))
    cols = int(spec.param("cols"))
    grid = f"{rows}x{cols}"
    plan = plan_parallel(graph, config, ParallelismSpec("tp2d", grid=(rows, cols)),
                         cache=cache)
    for phase_plan in plan.phases:
        total = sum(phase_plan.node_compute_seconds)
        reference = phase_plan.unsharded_seconds
        if abs(total - reference) > 1e-9 * max(abs(reference), 1e-30):
            raise ScenarioFailure(
                f"{graph.name} tp2d:{grid}: per-node compute {total!r} does not "
                f"conserve the unsharded phase {reference!r}"
            )
        serial = phase_plan.compute_seconds + phase_plan.comm_seconds
        if phase_plan.seconds > serial * (1 + 1e-12):
            raise ScenarioFailure(
                f"{graph.name} tp2d:{grid}: phase {phase_plan.name!r} "
                f"({phase_plan.seconds!r} s) is slower than serial compute + "
                f"comm ({serial!r} s) — overlap can only help"
            )
        overlapped = phase_plan.comm_overlapped_seconds
        if not 0.0 <= overlapped <= phase_plan.comm_seconds * (1 + 1e-12):
            raise ScenarioFailure(
                f"{graph.name} tp2d:{grid}: overlapped comm {overlapped!r} outside "
                f"[0, comm={phase_plan.comm_seconds!r}]"
            )
        exposed = phase_plan.comm_exposed_seconds
        if abs(exposed + overlapped - phase_plan.comm_seconds) > 1e-12 * max(
            phase_plan.comm_seconds, 1e-30
        ):
            raise ScenarioFailure(
                f"{graph.name} tp2d:{grid}: exposed {exposed!r} + overlapped "
                f"{overlapped!r} does not reconstruct comm {phase_plan.comm_seconds!r}"
            )
    identity = plan_parallel(graph, config, "tp2d:1x1", cache=cache)
    if identity.total_seconds != identity.unsharded_seconds:
        raise ScenarioFailure(f"{graph.name}: tp2d:1x1 total differs from unsharded timing")
    for phase_plan in identity.phases:
        if phase_plan.node_compute_seconds != (phase_plan.unsharded_seconds,):
            raise ScenarioFailure(
                f"{graph.name}: tp2d:1x1 phase {phase_plan.name!r} is not "
                "bit-identical to the unsharded phase"
            )
        if phase_plan.comm_seconds != 0.0 or phase_plan.comm_overlapped_seconds != 0.0:
            raise ScenarioFailure(
                f"{graph.name}: tp2d:1x1 phase {phase_plan.name!r} reports "
                "communication on a single-node grid"
            )


# ------------------------------------------------------------- serve-parity
def _sample_serve_parity(rng: random.Random) -> ScenarioSpec:
    return _spec(
        "serve-parity",
        scheduler=rng.choice(["fcfs", "sjf", "rr", "priority", "slo"]),
        batching=rng.choice(["request", "step"]),
        seed=rng.randint(0, 9999),
        tenants=rng.randint(1, 4),
        # The floor reaches near-empty traces: parity must hold there too.
        rate=round(rng.uniform(0.05, 8.0), 2),
        duration=round(rng.uniform(2.0, 6.0), 2),
        num_nodes=rng.choice([2, 4]),
    )


def _serve_simulator(spec: ScenarioSpec, engine: str):
    from repro.serve import ServeSimulator

    kwargs = dict(
        config=_shared_config(int(spec.param("num_nodes"))),
        scheduler=str(spec.param("scheduler")),
        engine=engine,
    )
    if spec.param("batching") == "step":
        # The degenerate step mode (one resident request, no preemption)
        # routes through the request-level engine, where the scalar/array
        # choice applies.
        kwargs.update(batching="step", max_batch=1, preemption=False)
    return ServeSimulator(**kwargs)


def _serve_trace(spec: ScenarioSpec):
    from repro.serve import poisson_trace

    tenants = _tenants(int(spec.param("tenants")), float(spec.param("rate")), slo=True)
    return poisson_trace(tenants, duration_s=float(spec.param("duration")),
                         seed=int(spec.param("seed")))


def _check_serve_parity(spec: ScenarioSpec) -> None:
    trace = _serve_trace(spec)
    fast = _serve_simulator(spec, "array").run(trace).to_json()
    slow = _serve_simulator(spec, "scalar").run(trace).to_json()
    if fast != slow:
        raise ScenarioFailure(
            f"scalar and array engines diverge for scheduler="
            f"{spec.param('scheduler')} batching={spec.param('batching')} "
            f"seed={spec.param('seed')} nodes={spec.param('num_nodes')}"
        )


# ------------------------------------------------------------- serve-shards
def _sample_serve_shards(rng: random.Random) -> ScenarioSpec:
    return _spec(
        "serve-shards",
        scheduler=rng.choice(["fcfs", "sjf", "rr", "priority", "slo"]),
        batching="request",
        seed=rng.randint(0, 9999),
        tenants=rng.randint(1, 3),
        rate=round(rng.uniform(0.05, 6.0), 2),
        duration=round(rng.uniform(2.0, 6.0), 2),
        num_nodes=4,
        shards=rng.randint(2, 5),
        jobs=rng.randint(1, 2),
    )


def _check_serve_shards(spec: ScenarioSpec) -> None:
    from repro.serve import ServeSimulator

    trace = _serve_trace(spec)
    base = _serve_simulator(spec, "array").run(trace, shards=1).to_json()
    sharded_sim = ServeSimulator(
        config=_shared_config(int(spec.param("num_nodes"))),
        scheduler=str(spec.param("scheduler")),
        engine="array",
        jobs=int(spec.param("jobs")),
    )
    sharded = sharded_sim.run(trace, shards=int(spec.param("shards"))).to_json()
    if sharded != base:
        raise ScenarioFailure(
            f"shards={spec.param('shards')} jobs={spec.param('jobs')} report "
            f"differs from the single-shard report (scheduler="
            f"{spec.param('scheduler')} seed={spec.param('seed')})"
        )


# ------------------------------------------------------ autoscale-invariants
def _sample_autoscale_invariants(rng: random.Random) -> ScenarioSpec:
    max_groups = rng.randint(1, 4)
    return _spec(
        "autoscale-invariants",
        scheduler=rng.choice(["fcfs", "sjf", "rr", "priority", "slo"]),
        seed=rng.randint(0, 9999),
        tenants=rng.randint(1, 3),
        # Reach both regimes: traces that never scale and overloads that
        # provision to the ceiling and drain back.
        rate=round(rng.uniform(0.5, 40.0), 2),
        duration=round(rng.uniform(2.0, 5.0), 2),
        min_groups=rng.randint(1, max_groups),
        max_groups=max_groups,
        max_batch=rng.choice([2, 4]),
        shards=rng.randint(2, 5),
        jobs=rng.randint(1, 2),
    )


def _autoscale_fuzz_simulator(spec: ScenarioSpec, policy, jobs: int = 1):
    from repro.serve import ServeSimulator

    return ServeSimulator(
        config=_shared_config(4),
        scheduler=str(spec.param("scheduler")),
        batching="step",
        max_batch=int(spec.param("max_batch")),
        autoscale=policy,
        jobs=jobs,
    )


def _check_autoscale_invariants(spec: ScenarioSpec) -> None:
    import dataclasses

    from repro.serve import AutoscalePolicy

    min_groups = int(spec.param("min_groups"))
    max_groups = int(spec.param("max_groups"))
    # Tight windows so short fuzz traces can actually trigger decisions.
    policy = AutoscalePolicy(
        min_groups=min_groups, max_groups=max_groups, window_s=0.2,
        sustain_windows=2, cooldown_s=0.5, provision_delay_s=0.25)
    trace = _serve_trace(spec)
    simulator = _autoscale_fuzz_simulator(spec, policy)
    report = simulator.run(trace, shards=None)
    auto = report.autoscale
    if auto is None:
        raise ScenarioFailure("autoscaled run produced no autoscale section")

    for time_s, groups in auto.timeline:
        if not min_groups <= groups <= max_groups:
            raise ScenarioFailure(
                f"fleet timeline leaves [{min_groups}, {max_groups}]: "
                f"{groups} groups at t={time_s!r}")
    changes = []
    for event in auto.events:
        expected = event.groups_before + (1 if event.direction == "out" else -1)
        if event.groups_after != expected:
            raise ScenarioFailure(
                f"scale event at t={event.time_s!r} does not conserve capacity: "
                f"{event.groups_before} -> {event.groups_after} ({event.direction})")
        if not (min_groups <= event.groups_before <= max_groups
                and min_groups <= event.groups_after <= max_groups):
            raise ScenarioFailure(
                f"scale event at t={event.time_s!r} leaves the fleet bounds: "
                f"{event.groups_before} -> {event.groups_after}")
        if event.direction == "out":
            if event.serving_from_s != event.time_s + policy.provision_delay_s:
                raise ScenarioFailure(
                    f"scale-out at t={event.time_s!r} serves from "
                    f"{event.serving_from_s!r}, not after the "
                    f"{policy.provision_delay_s!r} s provisioning delay")
            changes.append((event.time_s, 1))
        else:
            if event.stopped_s is None or event.stopped_s < event.time_s:
                raise ScenarioFailure(
                    f"scale-in at t={event.time_s!r} has drain stop "
                    f"{event.stopped_s!r} before the decision")
            changes.append((event.stopped_s, -1))
    if auto.events:
        # The committed-fleet timeline must reconstruct exactly from the
        # event stream (shards=None runs a single cold segment).
        fleet = min_groups
        rebuilt = [auto.timeline[0]]
        for time_s, delta in sorted(changes):
            fleet += delta
            rebuilt.append((time_s, fleet))
        if tuple(rebuilt) != auto.timeline:
            raise ScenarioFailure(
                f"fleet timeline {auto.timeline!r} does not reconstruct from "
                f"the scale events {rebuilt!r}")
    # Windows tick lazily, so wall timestamps of admissions and decisions can
    # interleave; the drain's scope is its loop-order slice of the admission
    # log, which must contain nothing for the draining group.
    for group_id, start_idx, stop_idx in simulator.last_drains:
        admitted = [
            admit_t
            for admit_t, group in simulator.last_admissions[start_idx:stop_idx]
            if group == group_id]
        if admitted:
            raise ScenarioFailure(
                f"draining group {group_id} admitted requests at {admitted!r} "
                "between its drain decision and its stop")
    drained = sum(1 for event in auto.events if event.direction == "in")
    if len(simulator.last_drains) != drained:
        raise ScenarioFailure(
            f"{drained} scale-in event(s) but {len(simulator.last_drains)} "
            "recorded drain(s)")

    single = _autoscale_fuzz_simulator(spec, policy).run(trace, shards=1).to_json()
    sharded = _autoscale_fuzz_simulator(spec, policy).run(
        trace, shards=int(spec.param("shards"))).to_json()
    pooled = _autoscale_fuzz_simulator(
        spec, policy, jobs=int(spec.param("jobs"))).run(
        trace, shards=int(spec.param("shards"))).to_json()
    if sharded != single or pooled != single:
        raise ScenarioFailure(
            f"autoscaled step run is not byte-identical across "
            f"shards={spec.param('shards')} jobs={spec.param('jobs')}")

    # A pinned fleet (min == max == every group server) must be byte-identical
    # to the fixed-fleet path once the autoscale section is stripped.
    servers = len(simulator.groups)
    pinned_policy = AutoscalePolicy(
        min_groups=servers, max_groups=servers, window_s=0.2,
        sustain_windows=2, cooldown_s=0.5, provision_delay_s=0.25)
    pinned = _autoscale_fuzz_simulator(spec, pinned_policy).run(trace, shards=None)
    fixed = _autoscale_fuzz_simulator(spec, None).run(trace, shards=None)
    if dataclasses.replace(pinned, autoscale=None).to_json() != fixed.to_json():
        raise ScenarioFailure(
            "min_groups == max_groups autoscale diverges from the fixed-fleet "
            f"report (scheduler={spec.param('scheduler')} "
            f"seed={spec.param('seed')})")


# --------------------------------------------------------------- percentile
def _sample_percentile(rng: random.Random) -> ScenarioSpec:
    # Straddle the vector threshold (1024) so both code paths are sampled.
    size = rng.choice([
        rng.randint(1, 16),
        rng.randint(900, 1100),
        rng.randint(1500, 4000),
    ])
    return _spec(
        "percentile",
        size=size,
        q=round(rng.uniform(0.0, 100.0), 3),
        seed=rng.randint(0, 9999),
        scale=rng.choice([1.0, 1e-6, 1e6]),
    )


def _check_percentile(spec: ScenarioSpec) -> None:
    from repro.analysis import percentile

    rng = random.Random(int(spec.param("seed")))
    size = int(spec.param("size"))
    scale = float(spec.param("scale"))
    values = [rng.uniform(0.0, scale) for _ in range(size)]
    q = float(spec.param("q"))
    # Nearest-rank reference, straight from the definition.
    rank = max(1, int(np.ceil(q / 100.0 * size))) if q > 0 else 1
    reference = sorted(values)[rank - 1]
    from_list = percentile(values, q)
    from_array = percentile(np.asarray(values), q)
    if from_list != reference:
        raise ScenarioFailure(
            f"percentile(list, {q}) = {from_list!r} != nearest-rank {reference!r} "
            f"(size={size})"
        )
    if from_array != reference:
        raise ScenarioFailure(
            f"percentile(ndarray, {q}) = {from_array!r} != nearest-rank "
            f"{reference!r} (size={size}) — np.partition fast path diverged"
        )


# ---------------------------------------------------------- trace-roundtrip
def _sample_trace_roundtrip(rng: random.Random) -> ScenarioSpec:
    params = dict(
        generator=rng.choice(["poisson", "bursty"]),
        seed=rng.randint(0, 9999),
        tenants=rng.randint(1, 4),
        rate=round(rng.uniform(0.05, 12.0), 2),
        duration=round(rng.uniform(1.0, 10.0), 2),
    )
    if params["generator"] == "bursty":
        params["burst_factor"] = round(rng.uniform(1.0, 10.0), 2)
        params["burst_fraction"] = round(rng.uniform(0.05, 0.5), 3)
    return _spec("trace-roundtrip", **params)


def _check_trace_roundtrip(spec: ScenarioSpec) -> None:
    from repro.serve import (
        RequestTrace,
        bursty_trace,
        bursty_trace_scalar,
        poisson_trace,
        poisson_trace_scalar,
    )

    tenants = _tenants(int(spec.param("tenants")), float(spec.param("rate")), slo=False)
    duration = float(spec.param("duration"))
    seed = int(spec.param("seed"))
    if spec.param("generator") == "poisson":
        fast = poisson_trace(tenants, duration_s=duration, seed=seed)
        slow = poisson_trace_scalar(tenants, duration_s=duration, seed=seed)
    else:
        kwargs = dict(
            burst_factor=float(spec.param("burst_factor")),
            burst_fraction=float(spec.param("burst_fraction")),
        )
        fast = bursty_trace(tenants, duration_s=duration, seed=seed, **kwargs)
        slow = bursty_trace_scalar(tenants, duration_s=duration, seed=seed, **kwargs)
    if fast.to_records() != slow.to_records():
        raise ScenarioFailure(
            f"{spec.param('generator')} generator diverges from its scalar twin "
            f"(seed={seed}, tenants={len(tenants)}, rate={spec.param('rate')})"
        )
    rebuilt = RequestTrace(name=fast.name, requests=list(fast), duration_s=fast.duration_s)
    if rebuilt.to_records() != fast.to_records():
        raise ScenarioFailure(
            f"{spec.param('generator')} trace does not survive a records round-trip"
        )


# ----------------------------------------------------------------- registry
@dataclass(frozen=True)
class _Kind:
    name: str
    sample: Callable[[random.Random], ScenarioSpec]
    check: Callable[[ScenarioSpec], None]
    #: Parameter shrink order: keys tried (in order) when minimising a failure,
    #: each mapped to its most-trivial value.
    shrink_floor: Tuple = ()


SCENARIO_KINDS: Dict[str, _Kind] = {
    kind.name: kind
    for kind in (
        _Kind("graph-roundtrip", _sample_graph_roundtrip, _check_graph_roundtrip),
        _Kind("catalog-build", _sample_catalog_build, _check_catalog_build),
        _Kind("tp-conservation", _sample_tp_conservation, _check_tp_conservation,
              (("degree", 2),)),
        _Kind("tp2d-conservation", _sample_tp2d_conservation, _check_tp2d_conservation,
              (("rows", 1), ("cols", 1))),
        _Kind("serve-parity", _sample_serve_parity, _check_serve_parity,
              (("tenants", 2), ("duration", 1.0), ("rate", 1.0), ("num_nodes", 2),
               ("scheduler", "fcfs"), ("batching", "request"))),
        _Kind("serve-shards", _sample_serve_shards, _check_serve_shards,
              (("tenants", 2), ("duration", 1.0), ("rate", 1.0), ("jobs", 1),
               ("shards", 2), ("scheduler", "fcfs"))),
        _Kind("autoscale-invariants", _sample_autoscale_invariants,
              _check_autoscale_invariants,
              (("tenants", 1), ("duration", 2.0), ("rate", 4.0),
               ("max_batch", 2), ("shards", 2), ("jobs", 1),
               ("scheduler", "fcfs"), ("min_groups", 1))),
        _Kind("percentile", _sample_percentile, _check_percentile,
              (("size", 1), ("scale", 1.0), ("q", 50.0))),
        _Kind("trace-roundtrip", _sample_trace_roundtrip, _check_trace_roundtrip,
              (("tenants", 1), ("duration", 1.0), ("rate", 1.0))),
    )
}


@dataclass
class ScenarioResult:
    spec: ScenarioSpec
    index: int
    status: str  # "pass" | "fail"
    message: str = ""
    shrunk: Optional[ScenarioSpec] = None

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    def repro_spec(self) -> dict:
        record = (self.shrunk or self.spec).to_dict()
        record["message"] = self.message
        record["index"] = self.index
        return record


@dataclass
class FuzzReport:
    seed: int
    cases: int
    results: List[ScenarioResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> List[ScenarioResult]:
        return [result for result in self.results if not result.passed]

    def failure_specs(self) -> List[dict]:
        return [result.repro_spec() for result in self.failures]

    def kind_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.spec.kind] = counts.get(result.spec.kind, 0) + 1
        return counts


def run_scenario(spec: ScenarioSpec) -> None:
    """Execute one scenario; raises :class:`ScenarioFailure` on violation."""
    try:
        kind = SCENARIO_KINDS[spec.kind]
    except KeyError:
        raise ValueError(
            f"unknown scenario kind {spec.kind!r}; options: {sorted(SCENARIO_KINDS)}"
        ) from None
    kind.check(spec)


def _failure_message(spec: ScenarioSpec) -> Optional[str]:
    try:
        run_scenario(spec)
    except ScenarioFailure as error:
        return str(error)
    except Exception as error:  # a crash is also a failure worth reporting
        return f"{type(error).__name__}: {error}"
    return None


def _shrink(spec: ScenarioSpec, kind: _Kind) -> ScenarioSpec:
    """Greedily replace parameters with their floor values while still failing."""
    current = spec
    for key, floor in kind.shrink_floor:
        params = dict(current.params)
        if key not in params or params[key] == floor:
            continue
        candidate = ScenarioSpec(
            kind=current.kind, params=tuple(sorted({**params, key: floor}.items()))
        )
        if _failure_message(candidate) is not None:
            current = candidate
    return current


def fuzz(
    cases: int = 100,
    seed: int = 0,
    kinds: Optional[Sequence[str]] = None,
) -> FuzzReport:
    """Run ``cases`` deterministic scenarios and report violations.

    Scenario ``i`` is fully determined by ``(seed, i)``: its kind is the
    round-robin pick ``kinds[i % len(kinds)]`` and its parameters are drawn
    from ``random.Random(f"{seed}:{i}")``, so any failure reproduces from the
    run seed alone — the report additionally carries each failure's concrete
    (shrunk) spec for single-scenario replay.
    """
    if cases <= 0:
        raise ValueError(f"cases must be positive, got {cases}")
    names = list(kinds) if kinds else sorted(SCENARIO_KINDS)
    for name in names:
        if name not in SCENARIO_KINDS:
            raise ValueError(
                f"unknown scenario kind {name!r}; options: {sorted(SCENARIO_KINDS)}"
            )
    report = FuzzReport(seed=seed, cases=cases)
    for index in range(cases):
        kind = SCENARIO_KINDS[names[index % len(names)]]
        rng = random.Random(f"{seed}:{index}")
        spec = kind.sample(rng)
        message = _failure_message(spec)
        if message is None:
            report.results.append(ScenarioResult(spec=spec, index=index, status="pass"))
            continue
        shrunk = _shrink(spec, kind)
        final_message = _failure_message(shrunk) or message
        report.results.append(ScenarioResult(
            spec=spec, index=index, status="fail", message=final_message,
            shrunk=None if shrunk == spec else shrunk,
        ))
    return report


def replay(record: Mapping) -> Optional[str]:
    """Re-run a reported failure spec; returns the failure message or ``None``."""
    spec = ScenarioSpec.from_dict(record)
    return _failure_message(spec)
