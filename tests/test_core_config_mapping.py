"""Tests for the MACO configuration dataclasses and the multi-core mapping scheme."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import maco_default_config, partition_gemm, partition_workload, schedule_gemm_plus
from repro.core.config import CPUConfig, MemoryConfig, MMAEConfig
from repro.gemm import GEMMShape, GEMMWorkload, Precision


class TestCPUConfig:
    def test_table1_defaults(self):
        cpu = CPUConfig()
        assert cpu.frequency_ghz == pytest.approx(2.2)
        assert cpu.issue_width == 4
        assert cpu.l1d_size_bytes == 48 * 1024
        assert cpu.l2_size_bytes == 512 * 1024
        assert cpu.itlb_entries == 48 and cpu.dtlb_entries == 48
        assert cpu.l2_tlb_entries == 1024
        assert cpu.pipeline_stages >= 12
        assert cpu.out_of_order

    def test_table4_peaks(self):
        cpu = CPUConfig()
        assert cpu.peak_gflops_fp64 == pytest.approx(35.2)
        assert cpu.peak_gflops_fp32 == pytest.approx(70.4, rel=0.01)
        assert cpu.area_mm2 == pytest.approx(6.25)
        assert cpu.power_w == pytest.approx(2.0)


class TestMMAEConfig:
    def test_table4_values(self):
        mmae = MMAEConfig()
        assert mmae.frequency_ghz == pytest.approx(2.5)
        assert mmae.fmac_lanes == 16
        assert mmae.peak_gflops_fp64 == pytest.approx(80.0)
        assert mmae.peak_gflops_fp32 == pytest.approx(160.0)
        assert mmae.peak_gflops_fp16 == pytest.approx(320.0)
        assert mmae.area_mm2 == pytest.approx(1.58)
        assert mmae.power_w == pytest.approx(1.5)

    def test_buffers_total_192kb(self):
        assert MMAEConfig().total_buffer_bytes == 192 * 1024

    def test_area_breakdown_sums_to_one(self):
        assert sum(fraction for _, fraction in MMAEConfig().area_breakdown) == pytest.approx(1.0, abs=0.01)

    def test_timing_parameters_inherit_geometry(self):
        params = MMAEConfig().timing_parameters()
        assert params.sa_rows == 4 and params.sa_cols == 4
        assert params.frequency_hz == pytest.approx(2.5e9)


class TestMACOConfig:
    def test_default_is_16_nodes(self):
        assert maco_default_config().num_nodes == 16

    def test_node_count_bounded_by_mesh(self):
        with pytest.raises(ValueError):
            maco_default_config(num_nodes=17)
        with pytest.raises(ValueError):
            maco_default_config(num_nodes=0)

    def test_aggregate_peak(self):
        config = maco_default_config(num_nodes=16)
        assert config.peak_gflops(Precision.FP64) == pytest.approx(1280.0)
        assert config.peak_gflops(Precision.FP32) == pytest.approx(2560.0)

    def test_with_nodes_and_flags_are_copies(self):
        config = maco_default_config()
        other = config.with_nodes(4).with_prediction(False).with_mapping(False)
        assert other.num_nodes == 4
        assert not other.prediction_enabled and not other.mapping_scheme_enabled
        assert config.num_nodes == 16 and config.prediction_enabled

    def test_paper_tiling_defaults(self):
        config = maco_default_config()
        assert (config.level1_tile.rows, config.level1_tile.cols) == (1024, 1024)
        assert (config.level2_tile.rows, config.level2_tile.cols) == (64, 64)
        assert config.memory.page_size == 4096

    def test_memory_config_l3_total(self):
        memory = MemoryConfig()
        assert memory.l3_total_bytes == memory.l3_slices * memory.l3_slice_bytes


class TestPartitionGEMM:
    def test_square_gemm_splits_rows(self):
        plan = partition_gemm(GEMMShape(1024, 1024, 1024), 4)
        assert plan.num_nodes == 4
        assert plan.dimension == "rows"
        assert plan.covers_output()

    def test_wide_gemm_splits_columns(self):
        plan = partition_gemm(GEMMShape(64, 4096, 512), 8)
        assert plan.dimension == "cols"
        assert plan.covers_output()

    def test_work_is_conserved(self):
        shape = GEMMShape(1000, 777, 333)
        plan = partition_gemm(shape, 6)
        assert plan.total_assigned_flops() == shape.flops

    def test_balanced_within_one_unit(self):
        plan = partition_gemm(GEMMShape(1027, 64, 64), 8)
        extents = [a.extent for a in plan.assignments]
        assert max(extents) - min(extents) <= 1

    def test_more_nodes_than_extent(self):
        plan = partition_gemm(GEMMShape(4, 3, 64), 8)
        assert plan.num_nodes == 4  # only four output rows to hand out

    def test_stash_bytes_positive_and_sensible(self):
        shape = GEMMShape(1024, 1024, 1024, Precision.FP32)
        plan = partition_gemm(shape, 4)
        assert plan.stash_bytes >= shape.bytes_b  # shared operand at minimum
        assert plan.stash_bytes <= 3 * shape.total_bytes

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            partition_gemm(GEMMShape(8, 8, 8), 0)

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.integers(1, 3000), n=st.integers(1, 3000), k=st.integers(1, 512),
        nodes=st.integers(1, 16),
    )
    def test_partition_properties(self, m, n, k, nodes):
        shape = GEMMShape(m, n, k)
        plan = partition_gemm(shape, nodes)
        assert plan.covers_output()
        assert plan.total_assigned_flops() == shape.flops
        assert plan.num_nodes <= nodes


class TestGemmPlusSchedule:
    def test_mapping_overlaps_cpu_work(self):
        mapped = schedule_gemm_plus(1.0, 0.5, 0.01, mapping_enabled=True)
        unmapped = schedule_gemm_plus(1.0, 0.5, 0.01, mapping_enabled=False)
        assert mapped.total_seconds < unmapped.total_seconds
        assert mapped.total_seconds >= 1.0  # cannot be faster than the MMAE time

    def test_unmapped_serialises_and_slows_tail(self):
        schedule = schedule_gemm_plus(1.0, 0.5, 0.0, mapping_enabled=False)
        assert schedule.total_seconds == pytest.approx(1.0 + 0.5 * schedule.unmapped_cpu_slowdown)

    def test_stash_exposure_is_bounded(self):
        schedule = schedule_gemm_plus(1.0, 0.0, 100.0, mapping_enabled=True)
        assert schedule.total_seconds <= 1.0 + 0.1 * 1.0 + 1e-6

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            schedule_gemm_plus(-1.0, 0.0, 0.0)


class TestPartitionWorkload:
    def test_every_node_gets_a_list(self):
        workload = GEMMWorkload("w", [GEMMShape(512, 512, 512), GEMMShape(256, 1024, 64)])
        per_node = partition_workload(workload, 4)
        assert len(per_node) == 4
        assert all(len(shapes) == 2 for shapes in per_node)

    def test_total_flops_conserved(self):
        workload = GEMMWorkload("w", [GEMMShape(300, 200, 100), GEMMShape(128, 128, 128)])
        per_node = partition_workload(workload, 3)
        total = sum(shape.flops for shapes in per_node for shape in shapes)
        assert total == workload.gemm_flops
