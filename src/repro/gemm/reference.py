"""Reference GEMM implementations used to validate the accelerator models.

``reference_gemm`` is a thin wrapper over NumPy; ``blocked_gemm`` reproduces
the two-level tiled loop nest in plain Python/NumPy so tests can confirm the
tiling enumeration visits every MAC exactly once; ``tiled_gemm_trace``
additionally records the tile visit order, which the MMAE scheduler tests
compare against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.gemm.precision import Precision
from repro.gemm.tiling import PAPER_LEVEL1, PAPER_LEVEL2, TileConfig, TwoLevelTiling
from repro.gemm.workloads import GEMMShape


def reference_gemm(
    a: np.ndarray, b: np.ndarray, c: Optional[np.ndarray] = None
) -> np.ndarray:
    """Compute ``C + A @ B`` (or ``A @ B`` when C is omitted) in float64."""
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("reference_gemm expects 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions do not match: {a.shape} @ {b.shape}")
    result = np.matmul(a.astype(np.float64), b.astype(np.float64))
    if c is not None:
        if c.shape != result.shape:
            raise ValueError(f"C has shape {c.shape}, expected {result.shape}")
        result = result + c.astype(np.float64)
    return result


def blocked_gemm(
    a: np.ndarray,
    b: np.ndarray,
    c: Optional[np.ndarray] = None,
    level1: TileConfig = PAPER_LEVEL1,
    level2: TileConfig = PAPER_LEVEL2,
) -> np.ndarray:
    """Two-level blocked GEMM following the MACO schedule.

    Numerically equivalent to :func:`reference_gemm` (up to floating point
    reassociation); exists so the tiling iteration itself is under test.
    """
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a.shape} @ {b.shape}")
    shape = GEMMShape(m, n, k, Precision.FP64)
    tiling = TwoLevelTiling(shape, level1, level2)
    out = np.zeros((m, n), dtype=np.float64)
    if c is not None:
        out += c.astype(np.float64)
    a64 = a.astype(np.float64)
    b64 = b.astype(np.float64)
    for tile1 in tiling.level1_tiles():
        for tile2 in tiling.level2_tiles(tile1):
            a_block = a64[tile2.row_start : tile2.row_end, tile2.k_start : tile2.k_end]
            b_block = b64[tile2.k_start : tile2.k_end, tile2.col_start : tile2.col_end]
            out[tile2.row_start : tile2.row_end, tile2.col_start : tile2.col_end] += (
                a_block @ b_block
            )
    return out


def tiled_gemm_trace(
    shape: GEMMShape,
    level1: TileConfig = PAPER_LEVEL1,
    level2: TileConfig = PAPER_LEVEL2,
) -> List[Tuple[int, int, int, int, int, int]]:
    """Return the (row_start, row_end, col_start, col_end, k_start, k_end) visit order.

    The MMAE controller must visit second-level tiles in exactly this order for
    the double-buffering overlap model to be valid.
    """
    tiling = TwoLevelTiling(shape, level1, level2)
    trace = []
    for tile1 in tiling.level1_tiles():
        for tile2 in tiling.level2_tiles(tile1):
            trace.append(
                (
                    tile2.row_start,
                    tile2.row_end,
                    tile2.col_start,
                    tile2.col_end,
                    tile2.k_start,
                    tile2.k_end,
                )
            )
    return trace
