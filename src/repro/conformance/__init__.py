"""Golden-model conformance harness and property-based scenario fuzzing.

Two complementary layers guard the functional fidelity (DESIGN.md
section 10):

* the **golden corpus** (:mod:`repro.conformance.golden` executed by
  :mod:`repro.conformance.harness`) pins specific kernel outputs — GEMM
  variants across every :class:`~repro.gemm.precision.Precision`, the
  two-level tile schedule, the im2col conv lowering, MoE top-k routing, the
  systolic wavefront emulators and the GEMM+ overlap model — against
  independent NumPy references under per-precision tolerances, with
  fingerprints committed under ``tests/golden/``;
* the **fuzz layer** (:mod:`repro.conformance.fuzz`) samples whole scenarios
  (catalog workloads, parallel plans, serve simulations, trace generators)
  and asserts the repo's exact cross-implementation invariants: conservation,
  degree-1 and sharding bit-identity, scalar/vectorized parity, and JSON
  round-trip losslessness.

Both are exposed as ``python -m repro.cli conformance`` (``run`` / ``fuzz`` /
``replay``).
"""

from repro.conformance.golden import (
    KERNELS,
    PRECISION_TOLERANCES,
    GoldenCase,
    GoldenMismatch,
    KernelDef,
    default_corpus,
    kernel_for,
)
from repro.conformance.harness import (
    DEFAULT_GOLDEN_DIR,
    CaseResult,
    ConformanceReport,
    GoldenFileError,
    RegenRefused,
    case_fingerprint,
    compare_arrays,
    load_golden_file,
    run_case,
    run_corpus,
    write_golden_file,
)
from repro.conformance.fuzz import (
    SCENARIO_KINDS,
    FuzzReport,
    ScenarioFailure,
    ScenarioResult,
    ScenarioSpec,
    fuzz,
    replay,
    run_scenario,
)

__all__ = [
    "KERNELS",
    "PRECISION_TOLERANCES",
    "GoldenCase",
    "GoldenMismatch",
    "KernelDef",
    "default_corpus",
    "kernel_for",
    "DEFAULT_GOLDEN_DIR",
    "CaseResult",
    "ConformanceReport",
    "GoldenFileError",
    "RegenRefused",
    "case_fingerprint",
    "compare_arrays",
    "load_golden_file",
    "run_case",
    "run_corpus",
    "write_golden_file",
    "SCENARIO_KINDS",
    "FuzzReport",
    "ScenarioFailure",
    "ScenarioResult",
    "ScenarioSpec",
    "fuzz",
    "replay",
    "run_scenario",
]
