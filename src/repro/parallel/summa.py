"""2-D (SUMMA) schedule arithmetic: grid layout, pipeline overlap, overheads.

The ``tp2d:RxC`` strategy shards one GEMM ``C[M,N] += A[M,K] @ B[K,N]`` over
an R x C processor grid the SUMMA way: grid row ``r`` owns the A row-panel
``A[m_r, :]``, grid column ``c`` owns the B column-panel ``B[:, n_c]``, and
PE ``(r, c)`` owns — and never ships mid-compute — its C tile
``C[m_r, n_c]``.  The K dimension is walked in ``S = lcm(R, C)`` pipeline
steps; at each step the column holding the current A k-panel broadcasts it
along the grid rows while the row holding the current B k-panel broadcasts
it down the grid columns, and both broadcasts for step ``t + 1`` run under
the compute of step ``t``.

This module holds the pieces of that schedule that are pure arithmetic —
the grid-to-node layout, the pipelined-overlap closed form, and the
``overhead_factor`` decomposition calibrated against the functional
wavefront emulator — so :mod:`repro.parallel.partitioner` stays about
sharding and :mod:`repro.conformance` can pin the closed form as a golden
kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "OVERHEAD_COMPONENT_SHARES",
    "OverheadBreakdown",
    "calibrate_overhead_factor",
    "summa_grid",
    "summa_pipeline_seconds",
    "summa_steps",
]

#: How the measured compute overhead splits by cause, as fractions of the
#: overhead (not of the total).  The shares follow the csl-experiments SUMMA
#: instruction-level breakdown (loop control 34.5%, memory operations 25.9%,
#: pipeline stalls 16.0% of measured cycles), renormalised without their
#: task-switching share — each of our nodes runs a single resident kernel.
OVERHEAD_COMPONENT_SHARES: Tuple[Tuple[str, float], ...] = (
    ("loop_control", 0.452),
    ("memory_ops", 0.339),
    ("pipeline_stalls", 0.209),
)


def summa_grid(
    group: Sequence[int], rows: int, cols: int
) -> Tuple[List[Tuple[int, ...]], List[Tuple[int, ...]]]:
    """Map a node group onto an R x C grid; returns (grid rows, grid columns).

    Grid position ``(r, c)`` is ``group[r * cols + c]`` — row-major, the same
    convention :class:`~repro.noc.mesh.MeshTopology` uses for node ids, so a
    contiguous group keeps each grid row contiguous on the physical mesh.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"SUMMA grid dimensions must be >= 1, got {rows}x{cols}")
    if len(group) != rows * cols:
        raise ValueError(
            f"node group of {len(group)} cannot form a {rows}x{cols} grid "
            f"({rows * cols} positions)"
        )
    nodes = list(group)
    grid_rows = [tuple(nodes[r * cols : (r + 1) * cols]) for r in range(rows)]
    grid_cols = [tuple(nodes[c::cols]) for c in range(cols)]
    return grid_rows, grid_cols


def summa_steps(rows: int, cols: int) -> int:
    """Pipeline steps of the R x C SUMMA schedule: ``lcm(R, C)`` k-panels.

    The A panels are owned one-per-grid-column and the B panels
    one-per-grid-row; ``lcm`` is the coarsest K split on which both broadcast
    rotations line up.  A 1x1 grid degenerates to one step (and zero
    broadcasts).
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"SUMMA grid dimensions must be >= 1, got {rows}x{cols}")
    return math.lcm(rows, cols)


def summa_pipeline_seconds(
    compute_seconds: float, broadcast_seconds: float, steps: int
) -> float:
    """Wall-clock seconds of the K-step pipelined SUMMA schedule.

    With per-step compute ``c = compute / S`` and per-step broadcast
    ``b = broadcast / S``, the timeline is: the first broadcast is exposed
    (nothing to overlap it with), every later broadcast runs under the
    previous step's compute, and the last compute has no broadcast behind it:

    ``total = b + (S - 1) * max(c, b) + c  =  max(compute, broadcast) + min(compute, broadcast) / S``

    which is the ``max(compute, comm) + exposed_tail`` shape: the smaller of
    the two legs hides entirely under the larger except for its one exposed
    pipeline step (the prologue broadcast when compute dominates, the
    epilogue compute when communication does).  Always <= the serial
    ``compute + broadcast``, meeting the planner's overlap-can-only-help
    guarantee, and exactly ``compute`` when there is nothing to broadcast.
    """
    if steps < 1:
        raise ValueError(f"pipeline steps must be >= 1, got {steps}")
    if compute_seconds < 0 or broadcast_seconds < 0:
        raise ValueError("schedule legs cannot be negative")
    if broadcast_seconds == 0.0:
        return compute_seconds
    longer = max(compute_seconds, broadcast_seconds)
    shorter = min(compute_seconds, broadcast_seconds)
    return longer + shorter / steps


@dataclass(frozen=True)
class OverheadBreakdown:
    """Measured-over-ideal compute factor, decomposed by cause.

    ``factor`` is functional-path cycles over ideal MAC cycles for the
    calibration block; ``components`` maps each cause to its share of the
    *overhead* (``factor - 1``), following
    :data:`OVERHEAD_COMPONENT_SHARES`.  Purely a report field — the analytic
    timing model already embodies these overheads through its tile schedule,
    so the breakdown explains a plan's compute seconds without changing them.
    """

    factor: float
    components: Tuple[Tuple[str, float], ...] = OVERHEAD_COMPONENT_SHARES

    def component_factors(self) -> Dict[str, float]:
        """Each cause's absolute contribution to the factor (sums to factor - 1)."""
        overhead = self.factor - 1.0
        return {name: overhead * share for name, share in self.components}

    def to_dict(self) -> dict:
        return {"factor": self.factor, "components": self.component_factors()}


#: One calibration per array geometry per process — the emulator walk is
#: cheap but ``plan_parallel`` is called per sweep cell.
_OVERHEAD_CACHE: Dict[Tuple[int, int, int], OverheadBreakdown] = {}

#: A-panel depth of the calibration block: long enough that the measured
#: factor reflects steady streaming, short enough to stay instant.
_CALIBRATION_TR = 64


def calibrate_overhead_factor(
    rows: int, cols: int, tr: int = _CALIBRATION_TR
) -> OverheadBreakdown:
    """Measure the compute overhead factor on the functional wavefront path.

    Runs one ``tr x rows @ rows x cols`` stationary block through the
    vectorized systolic emulator — the functional fidelity with real cycle
    counters — and divides its measured cycles by the ideal
    ``MACs / (rows * cols)``.  The result is memoised per geometry, so the
    calibration happens once per process and every plan for the same array
    reports the same breakdown (deterministic across ``--jobs`` fan-outs).
    """
    import numpy as np

    from repro.mmae.systolic_array import VectorizedSystolicArrayEmulator

    key = (rows, cols, tr)
    breakdown = _OVERHEAD_CACHE.get(key)
    if breakdown is None:
        emulator = VectorizedSystolicArrayEmulator(rows=rows, cols=cols)
        result = emulator.run_block(
            np.ones((tr, rows), dtype=np.float64),
            np.ones((rows, cols), dtype=np.float64),
        )
        ideal_cycles = result.macs / (rows * cols)
        breakdown = OverheadBreakdown(factor=result.cycles / ideal_cycles)
        _OVERHEAD_CACHE[key] = breakdown
    return breakdown
