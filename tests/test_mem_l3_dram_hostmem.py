"""Tests for the distributed L3 (stash/lock), the DRAM model, and host memory."""

import numpy as np
import pytest

from repro.mem.address import AddressRange
from repro.mem.dram import DRAMConfig, DRAMModel
from repro.mem.hostmem import HostMemory, HostMemoryError
from repro.mem.l3cache import DistributedL3Cache, StashRequest


class TestDistributedL3:
    def make_l3(self) -> DistributedL3Cache:
        return DistributedL3Cache(num_slices=4, slice_size_bytes=256 * 1024)

    def test_total_capacity(self):
        l3 = self.make_l3()
        assert l3.total_size_bytes == 4 * 256 * 1024

    def test_addresses_interleave_across_slices(self):
        l3 = self.make_l3()
        slices = {l3.slice_for(line * 64).slice_id for line in range(8)}
        assert slices == {0, 1, 2, 3}

    def test_miss_then_hit(self):
        l3 = self.make_l3()
        first = l3.access(0, 0x1000)
        second = l3.access(0, 0x1000)
        assert not first.hit and first.from_dram
        assert second.hit and not second.from_dram
        assert second.latency_cycles < first.latency_cycles

    def test_access_range_counts_lines(self):
        l3 = self.make_l3()
        counts = l3.access_range(0, AddressRange(0, 64 * 10))
        assert counts["misses"] == 10
        counts = l3.access_range(0, AddressRange(0, 64 * 10))
        assert counts["hits"] == 10

    def test_stash_prefetches_lines(self):
        l3 = self.make_l3()
        result = l3.stash(StashRequest(AddressRange(0, 4096), lock=False, requester=1))
        assert result.lines_fetched == 64
        assert l3.residency_of(AddressRange(0, 4096)) == 1.0

    def test_stash_is_idempotent(self):
        l3 = self.make_l3()
        l3.stash(StashRequest(AddressRange(0, 4096)))
        result = l3.stash(StashRequest(AddressRange(0, 4096)))
        assert result.lines_fetched == 0
        assert result.lines_already_resident == 64

    def test_stash_with_lock_pins_lines(self):
        l3 = self.make_l3()
        result = l3.stash(StashRequest(AddressRange(0, 4096), lock=True))
        assert result.lines_locked == 64
        assert l3.total_locked_lines == 64

    def test_locked_lines_survive_streaming(self):
        l3 = DistributedL3Cache(num_slices=1, slice_size_bytes=16 * 1024, associativity=4)
        target = AddressRange(0, 2048)
        l3.stash(StashRequest(target, lock=True))
        # Stream several times the cache capacity through it.
        for line in range(0, 64 * 1024, 64):
            l3.access(0, 0x100000 + line)
        assert l3.residency_of(target) == 1.0

    def test_lock_budget_respected(self):
        l3 = DistributedL3Cache(num_slices=1, slice_size_bytes=8 * 1024, max_locked_fraction=0.5)
        result = l3.stash(StashRequest(AddressRange(0, 8 * 1024), lock=True))
        assert result.lines_locked <= int(0.5 * l3.slices[0].config.num_lines) + 1

    def test_unlock_range(self):
        l3 = self.make_l3()
        l3.stash(StashRequest(AddressRange(0, 1024), lock=True))
        unlocked = l3.unlock_range(AddressRange(0, 1024))
        assert unlocked == 16
        assert l3.total_locked_lines == 0

    def test_hit_rate(self):
        l3 = self.make_l3()
        l3.access(0, 0)
        l3.access(0, 0)
        assert l3.hit_rate() == pytest.approx(0.5)


class TestDRAMModel:
    def test_total_bandwidth(self):
        dram = DRAMModel(DRAMConfig(num_channels=4, channel_bandwidth_bytes_per_s=50e9))
        assert dram.effective_bandwidth(1) == pytest.approx(200e9)

    def test_bandwidth_degrades_with_many_streams(self):
        dram = DRAMModel()
        assert dram.effective_bandwidth(16) < dram.effective_bandwidth(4)
        assert dram.effective_bandwidth(16) >= 0.7 * dram.effective_bandwidth(1)

    def test_transfer_time_scales_with_size(self):
        dram = DRAMModel()
        small = dram.transfer_time_s(1 << 20)
        large = dram.transfer_time_s(1 << 24)
        assert large > small

    def test_transfer_time_includes_latency_floor(self):
        dram = DRAMModel()
        assert dram.transfer_time_s(0) >= dram.config.access_latency_ns * 1e-9

    def test_traffic_accounting(self):
        dram = DRAMModel()
        dram.transfer_time_s(1000, write=False)
        dram.transfer_time_s(500, write=True)
        assert dram.bytes_read == 1000
        assert dram.bytes_written == 500
        assert dram.total_bytes == 1500

    def test_per_stream_share_decreases(self):
        dram = DRAMModel()
        assert dram.per_stream_bandwidth(16) < dram.per_stream_bandwidth(2)

    def test_invalid_stream_count(self):
        with pytest.raises(ValueError):
            DRAMModel().effective_bandwidth(0)


class TestHostMemory:
    def test_register_and_read_back(self):
        memory = HostMemory()
        array = np.arange(12, dtype=np.float64).reshape(3, 4)
        memory.register_matrix(0x1000, array)
        assert memory.has_matrix(0x1000)
        np.testing.assert_array_equal(memory.matrix_at(0x1000), array)

    def test_overlapping_regions_rejected(self):
        memory = HostMemory()
        memory.register_matrix(0x1000, np.zeros((4, 4)))
        with pytest.raises(HostMemoryError):
            memory.register_matrix(0x1000 + 64, np.zeros((4, 4)))

    def test_find_region(self):
        memory = HostMemory()
        memory.register_matrix(0x2000, np.zeros((8, 8)))
        assert memory.find_region(0x2000 + 100) == 0x2000
        assert memory.find_region(0x9000) is None

    def test_write_matrix_shape_checked(self):
        memory = HostMemory()
        memory.register_matrix(0x1000, np.zeros((2, 2)))
        with pytest.raises(HostMemoryError):
            memory.write_matrix(0x1000, np.zeros((3, 3)))

    def test_zero_region(self):
        memory = HostMemory()
        memory.register_matrix(0x1000, np.ones((4, 4)))
        memory.zero_region(0x1000)
        assert np.all(memory.matrix_at(0x1000) == 0)

    def test_only_2d_matrices(self):
        memory = HostMemory()
        with pytest.raises(HostMemoryError):
            memory.register_matrix(0, np.zeros(16))

    def test_unregister(self):
        memory = HostMemory()
        memory.register_matrix(0x1000, np.zeros((2, 2)))
        memory.unregister(0x1000)
        assert not memory.has_matrix(0x1000)
