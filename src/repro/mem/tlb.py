"""TLB models: single level and the ITLB/DTLB + shared L2 TLB hierarchy of Table I."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.mem.address import DEFAULT_PAGE_SIZE, page_number, page_offset
from repro.mem.page_table import PageTable, PageTableWalker


@dataclass(frozen=True)
class TLBEntry:
    """One cached translation."""

    asid: int
    vpn: int
    pfn: int


@dataclass
class TLBStats:
    hits: int = 0
    misses: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class TLB:
    """A fully associative, LRU-replaced TLB (the paper's TLBs are fully associative)."""

    def __init__(self, entries: int, page_size: int = DEFAULT_PAGE_SIZE, name: str = "tlb") -> None:
        if entries <= 0:
            raise ValueError("TLB must have at least one entry")
        self.capacity = entries
        self.page_size = page_size
        self.name = name
        self.stats = TLBStats()
        self._entries: OrderedDict[tuple[int, int], int] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, asid: int, vaddr: int) -> Optional[int]:
        """Return the physical address on hit, ``None`` on miss (stats are updated)."""
        vpn = page_number(vaddr, self.page_size)
        key = (asid, vpn)
        pfn = self._entries.get(key)
        if pfn is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return pfn * self.page_size + page_offset(vaddr, self.page_size)

    def probe(self, asid: int, vaddr: int) -> bool:
        """Check for a translation without touching LRU state or stats."""
        return (asid, page_number(vaddr, self.page_size)) in self._entries

    def insert(self, asid: int, vaddr: int, paddr: int) -> None:
        """Install a translation, evicting the least recently used entry if full."""
        vpn = page_number(vaddr, self.page_size)
        pfn = page_number(paddr, self.page_size)
        key = (asid, vpn)
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = pfn

    def flush(self, asid: Optional[int] = None) -> None:
        """Invalidate all entries, or only those of one ASID."""
        self.stats.flushes += 1
        if asid is None:
            self._entries.clear()
        else:
            stale = [key for key in self._entries if key[0] == asid]
            for key in stale:
                del self._entries[key]


@dataclass
class TranslationResult:
    """Outcome of a translation through the TLB hierarchy."""

    paddr: int
    cycles: int
    level: str  # "l1", "l2" or "walk"

    @property
    def hit(self) -> bool:
        return self.level != "walk"


class TLBHierarchy:
    """The per-core translation machinery: L1 TLB, shared L2 TLB, page-table walker.

    The MMAE shares the CPU core's L2 ("shared") TLB via a customised interface
    (paper Section III.A); :meth:`translate` is the path exercised both by CPU
    loads/stores and by mATLB pre-walk requests.
    """

    def __init__(
        self,
        l1_entries: int = 48,
        l2_entries: int = 1024,
        page_size: int = DEFAULT_PAGE_SIZE,
        l1_latency_cycles: int = 1,
        l2_latency_cycles: int = 4,
        walker: Optional[PageTableWalker] = None,
        name: str = "dtlb",
    ) -> None:
        self.l1 = TLB(l1_entries, page_size, name=f"{name}.l1")
        self.l2 = TLB(l2_entries, page_size, name=f"{name}.l2")
        self.page_size = page_size
        self.l1_latency_cycles = l1_latency_cycles
        self.l2_latency_cycles = l2_latency_cycles
        self.walker = walker if walker is not None else PageTableWalker()
        self.name = name

    def translate(self, page_table: PageTable, vaddr: int) -> TranslationResult:
        """Translate ``vaddr`` for the address space behind ``page_table``."""
        asid = page_table.asid
        paddr = self.l1.lookup(asid, vaddr)
        if paddr is not None:
            return TranslationResult(paddr, self.l1_latency_cycles, "l1")
        paddr = self.l2.lookup(asid, vaddr)
        if paddr is not None:
            self.l1.insert(asid, vaddr, paddr)
            return TranslationResult(paddr, self.l1_latency_cycles + self.l2_latency_cycles, "l2")
        walk = self.walker.walk(page_table, vaddr)
        self.l1.insert(asid, vaddr, walk.paddr)
        self.l2.insert(asid, vaddr, walk.paddr)
        cycles = self.l1_latency_cycles + self.l2_latency_cycles + walk.cycles
        return TranslationResult(walk.paddr, cycles, "walk")

    def prewalk(self, page_table: PageTable, vaddr: int) -> TranslationResult:
        """Install a translation ahead of use (issued by the mATLB).

        Identical to :meth:`translate` except the caller treats the returned
        cycles as background work that can overlap with computation.
        """
        return self.translate(page_table, vaddr)

    def flush(self, asid: Optional[int] = None) -> None:
        self.l1.flush(asid)
        self.l2.flush(asid)

    @property
    def total_misses(self) -> int:
        return self.l2.stats.misses

    @property
    def total_accesses(self) -> int:
        return self.l1.stats.accesses
