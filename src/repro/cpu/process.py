"""Process and ASID management.

Multiple processes can submit GEMM tasks to the same MMAE; the MTQ keeps a
per-task ASID so the outcome survives context switches (paper Section III.C).
The :class:`ProcessManager` provides just enough of an OS abstraction for the
multi-process tests and examples: create processes with private address
spaces, switch between them (saving/restoring the register file), and account
for the context-switch cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.isa.registers import RegisterFile
from repro.mem.page_table import AddressSpace, FrameAllocator


@dataclass
class Process:
    """A software process: ASID, address space, saved register state."""

    asid: int
    name: str
    address_space: AddressSpace
    saved_registers: Optional[List[int]] = None
    context_switches: int = 0

    def __post_init__(self) -> None:
        if self.asid < 0:
            raise ValueError("ASID must be non-negative")


class ProcessManager:
    """Creates processes and switches the CPU core between them."""

    #: Nominal context-switch cost (register save/restore + pipeline drain), CPU cycles.
    CONTEXT_SWITCH_CYCLES = 800

    def __init__(self, frame_allocator: Optional[FrameAllocator] = None, page_size: int = 4096) -> None:
        self.frame_allocator = frame_allocator or FrameAllocator(
            total_frames=4 * 1024 * 1024, page_size=page_size
        )
        self.page_size = page_size
        self._processes: Dict[int, Process] = {}
        self._next_asid = 0
        self.current: Optional[Process] = None
        self.total_switch_cycles = 0

    def create_process(self, name: str) -> Process:
        """Create a process with a fresh ASID and empty address space."""
        asid = self._next_asid
        self._next_asid += 1
        process = Process(
            asid=asid,
            name=name,
            address_space=AddressSpace(
                asid=asid, frame_allocator=self.frame_allocator, page_size=self.page_size
            ),
        )
        self._processes[asid] = process
        if self.current is None:
            self.current = process
        return process

    def process(self, asid: int) -> Process:
        if asid not in self._processes:
            raise KeyError(f"no process with ASID {asid}")
        return self._processes[asid]

    def processes(self) -> List[Process]:
        return list(self._processes.values())

    def switch_to(self, asid: int, registers: Optional[RegisterFile] = None) -> int:
        """Switch the core to the process with ``asid``; returns the cycle cost.

        If a register file is supplied, the outgoing process's registers are
        saved and the incoming process's registers restored, so tests can
        verify that MTQ state is the only channel that survives the switch.
        """
        target = self.process(asid)
        if self.current is target:
            return 0
        if registers is not None:
            if self.current is not None:
                self.current.saved_registers = registers.snapshot()
            if target.saved_registers is not None:
                registers.restore(target.saved_registers)
            else:
                registers.reset()
        if self.current is not None:
            self.current.context_switches += 1
        self.current = target
        self.total_switch_cycles += self.CONTEXT_SWITCH_CYCLES
        return self.CONTEXT_SWITCH_CYCLES

    @property
    def current_asid(self) -> int:
        if self.current is None:
            raise RuntimeError("no process has been created yet")
        return self.current.asid
