"""Scalar/vectorized parity for the functional fast path.

The vectorized kernels (page prediction, batch translation, the NumPy
wavefront emulator) must be *bit-identical* to the retained scalar
references: same pages in the same access order, identical mATLB/TLB/walker
hit/miss/prewalk counters and internal LRU/FIFO orders, identical emulator
outputs and cycle counts.  These tests drive both implementations over the
same randomized workloads (including edge tiles and non-power-of-two strides)
and compare exhaustively.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from parity_utils import run_emulator_pair
from repro.cpu.mmu import MMU
from repro.gemm.precision import Precision
from repro.mem.page_table import FrameAllocator, AddressSpace, PageFaultError, PageTableWalker
from repro.mem.tlb import LEVEL_FAULT, LEVEL_L1, LEVEL_L2, LEVEL_WALK, TLB, TLBHierarchy
from repro.mmae.data_engine import AcceleratorDataEngine
from repro.mmae.matlb import MATLB, MatrixLayout, PageTablePredictor
from repro.mmae.systolic_array import (
    SystolicArray,
    SystolicArrayEmulator,
    VectorizedSystolicArrayEmulator,
)


# ------------------------------------------------------------------ helpers
def make_space(pages: int, asid: int = 0, page_size: int = 4096) -> AddressSpace:
    space = AddressSpace(asid=asid, frame_allocator=FrameAllocator(total_frames=pages + 8),
                         page_size=page_size)
    space.allocate_region("m", pages * page_size)
    return space


def tlb_state(tlb: TLB):
    return (vars(tlb.stats).copy(), list(tlb._entries.items()))


def hierarchy_state(h: TLBHierarchy):
    return (
        tlb_state(h.l1),
        tlb_state(h.l2),
        h.walker.walks_performed,
        h.walker.total_walk_cycles,
    )


def mmu_state(mmu: MMU):
    return (vars(mmu.stats).copy(), hierarchy_state(mmu.dtlb))


def matlb_state(matlb: MATLB):
    return (vars(matlb.stats).copy(), list(matlb._entries.items()))


# ------------------------------------------------------- predictor parity
class TestPredictorParity:
    @settings(max_examples=60, deadline=None)
    @given(
        stride=st.integers(64, 700),       # non-power-of-two strides included
        element_bytes=st.sampled_from([2, 4, 8]),
        base_page_offset=st.integers(0, 4095),
        row_start=st.integers(0, 40),
        row_count=st.integers(1, 80),
        col_start=st.integers(0, 40),
        col_count=st.integers(1, 24),
    )
    def test_matches_scalar_reference_exactly(
        self, stride, element_bytes, base_page_offset, row_start, row_count, col_start, col_count
    ):
        layout = MatrixLayout(
            base_vaddr=0x40_0000 + base_page_offset,
            rows=row_start + row_count,
            cols=max(64, col_start + col_count),
            row_stride_elements=max(stride, col_start + col_count),
            element_bytes=element_bytes,
        )
        predictor = PageTablePredictor()
        scalar = predictor.tile_page_addresses_scalar(
            layout, row_start, row_count, col_start, col_count
        )
        vectorized = predictor.tile_page_vaddrs(
            layout, row_start, row_count, col_start, col_count
        )
        assert vectorized.tolist() == scalar  # same pages, same access order
        assert predictor.tile_page_addresses(
            layout, row_start, row_count, col_start, col_count
        ) == scalar

    def test_template_memo_is_rebased_not_stale(self):
        """Two tiles with identical geometry but different bases share a template."""
        layout = MatrixLayout(0x10_0000, 1024, 1024, 1024, 8)
        predictor = PageTablePredictor()
        first = predictor.tile_page_vaddrs(layout, 0, 64, 0, 64)
        second = predictor.tile_page_vaddrs(layout, 64, 64, 0, 64)
        assert len(predictor._templates) == 1  # one geometry, memoized once
        assert second.tolist() == predictor.tile_page_addresses_scalar(layout, 64, 64, 0, 64)
        assert first.tolist() != second.tolist()

    def test_bounds_errors_match_scalar(self):
        layout = MatrixLayout(0, 64, 64, 64, 8)
        predictor = PageTablePredictor()
        for args in [(-1, 4, 0, 4), (0, 4, -1, 4), (60, 8, 0, 8), (0, 8, 60, 8)]:
            with pytest.raises(ValueError):
                predictor.tile_page_addresses_scalar(layout, *args)
            with pytest.raises(ValueError):
                predictor.tile_page_vaddrs(layout, *args)


# ------------------------------------------------------------ walker parity
class ReferenceWalkCache:
    """The seed's walk cache: insertion-ordered dict with FIFO eviction."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self.cache = {}

    def access(self, key) -> bool:
        if key in self.cache:
            return True
        if len(self.cache) >= self.entries:
            del self.cache[next(iter(self.cache))]
        self.cache[key] = True
        return False


class TestWalkerParity:
    @settings(max_examples=30, deadline=None)
    @given(
        vpns=st.lists(st.integers(0, 300), min_size=1, max_size=200),
        capacity=st.integers(1, 12),
    )
    def test_timestamp_fifo_equals_seed_dict_fifo(self, vpns, capacity):
        """The timestamp formulation is exactly the seed's dict-FIFO cache."""
        space = make_space(pages=301)
        table = space.page_table
        walker = PageTableWalker(walk_cache_entries=capacity)
        reference = ReferenceWalkCache(capacity)
        for vpn in vpns:
            vaddr = 0x10_0000 + vpn * 4096
            result = walker.walk(table, vaddr)
            expected = 0
            for level in range(table.levels):
                key = (table.asid, (vaddr >> 12) >> (9 * (table.levels - 1 - level)))
                if reference.access(key):
                    expected += walker.cached_level_latency_cycles
                else:
                    expected += walker.memory_latency_cycles
            assert result.cycles == expected

    @settings(max_examples=20, deadline=None)
    @given(
        vpns=st.lists(st.integers(0, 200), min_size=1, max_size=120),
        capacity=st.integers(1, 12),
        split=st.integers(0, 120),
    )
    def test_walk_batch_equals_scalar_walks(self, vpns, capacity, split):
        """walk_batch after a scalar warm-up gives identical paddrs/cycles/stats."""
        space = make_space(pages=201)
        table = space.page_table
        scalar = PageTableWalker(walk_cache_entries=capacity)
        batched = PageTableWalker(walk_cache_entries=capacity)
        vaddrs = [0x10_0000 + vpn * 4096 + 17 for vpn in vpns]
        warmup, batch = vaddrs[: split % (len(vaddrs) + 1)], vaddrs[split % (len(vaddrs) + 1):]
        scalar_results = []
        for vaddr in warmup:
            scalar.walk(table, vaddr)
            batched.walk(table, vaddr)
        for vaddr in batch:
            result = scalar.walk(table, vaddr)
            scalar_results.append((result.paddr, result.cycles))
        if batch:
            paddrs, cycles = batched.walk_batch(table, batch)
            assert list(zip(paddrs.tolist(), cycles.tolist())) == scalar_results
        assert batched.walks_performed == scalar.walks_performed
        assert batched.total_walk_cycles == scalar.total_walk_cycles
        # Behavioural equivalence going forward, not just aggregate equality:
        probe = 0x10_0000 + 123 * 4096
        assert scalar.walk(table, probe).cycles == batched.walk(table, probe).cycles


# ---------------------------------------------------------------- TLB parity
class TestTLBBatchParity:
    @settings(max_examples=25, deadline=None)
    @given(
        vpns=st.lists(st.integers(0, 40), min_size=1, max_size=100),
        capacity=st.integers(1, 8),
    )
    def test_lookup_batch_matches_scalar_lookups(self, vpns, capacity):
        scalar = TLB(entries=capacity)
        batched = TLB(entries=capacity)
        for tlb in (scalar, batched):
            for vpn in range(0, 20, 2):
                tlb.insert(0, vpn * 4096, (100 + vpn) * 4096)
        vaddrs = [vpn * 4096 + 5 for vpn in vpns]
        expected = [scalar.lookup(0, vaddr) for vaddr in vaddrs]
        got = batched.lookup_batch(0, vaddrs)
        assert got.tolist() == [-1 if paddr is None else paddr for paddr in expected]
        assert tlb_state(scalar) == tlb_state(batched)

    @settings(max_examples=25, deadline=None)
    @given(
        vpns=st.lists(st.integers(0, 60), min_size=1, max_size=120),
        l1_entries=st.integers(1, 6),
        l2_entries=st.integers(2, 16),
        mapped_pages=st.integers(1, 61),
    )
    def test_translate_batch_skip_mode_matches_scalar_loop(
        self, vpns, l1_entries, l2_entries, mapped_pages
    ):
        """Mixed hit/miss/walk/fault streams behave identically, per address."""
        space = make_space(pages=mapped_pages)
        table = space.page_table
        scalar = TLBHierarchy(l1_entries=l1_entries, l2_entries=l2_entries)
        batched = TLBHierarchy(l1_entries=l1_entries, l2_entries=l2_entries)
        vaddrs = [0x10_0000 + vpn * 4096 + 7 for vpn in vpns]
        expected = []
        for vaddr in vaddrs:
            try:
                result = scalar.translate(table, vaddr)
            except PageFaultError:
                expected.append((-1, 0, LEVEL_FAULT))
            else:
                code = {"l1": LEVEL_L1, "l2": LEVEL_L2, "walk": LEVEL_WALK}[result.level]
                expected.append((result.paddr, result.cycles, code))
        result = batched.translate_batch(table, vaddrs, on_fault="skip")
        got = list(zip(result.paddrs.tolist(), result.cycles.tolist(), result.levels.tolist()))
        assert got == expected
        assert hierarchy_state(scalar) == hierarchy_state(batched)

    def test_translate_batch_raise_mode_matches_scalar_partial_progress(self):
        space = make_space(pages=4)
        table = space.page_table
        scalar = TLBHierarchy(l1_entries=2, l2_entries=4)
        batched = TLBHierarchy(l1_entries=2, l2_entries=4)
        # Two mapped pages, then an unmapped one, then a mapped page that must
        # never be reached.
        vaddrs = [0x10_0000, 0x10_1000, 0x90_0000, 0x10_2000]
        with pytest.raises(PageFaultError):
            for vaddr in vaddrs:
                scalar.translate(table, vaddr)
        with pytest.raises(PageFaultError) as excinfo:
            batched.translate_batch(table, vaddrs, on_fault="raise")
        assert excinfo.value.vaddr == 0x90_0000
        assert excinfo.value.batch_processed == 3
        assert hierarchy_state(scalar) == hierarchy_state(batched)

    def test_translate_batch_rejects_unknown_fault_mode(self):
        space = make_space(pages=1)
        hierarchy = TLBHierarchy()
        with pytest.raises(ValueError):
            hierarchy.translate_batch(space.page_table, [0x10_0000], on_fault="ignore")


# ---------------------------------------------------------------- MMU parity
class TestMMUBatchParity:
    def _mmu_pair(self, pages=32):
        space = make_space(pages=pages)
        mmus = []
        for _ in range(2):
            mmu = MMU(itlb_entries=4, dtlb_entries=4, l2_entries=16)
            mmu.register_page_table(space.page_table)
            mmus.append(mmu)
        return mmus[0], mmus[1], space

    def test_prewalk_batch_matches_scalar_prewalks_with_faults(self):
        scalar, batched, space = self._mmu_pair(pages=8)
        vaddrs = [0x10_0000 + i * 4096 for i in range(8)] + [0xDEAD_0000, 0x10_0000]
        expected_cycles = []
        for vaddr in vaddrs:
            try:
                expected_cycles.append(scalar.prewalk(0, vaddr).cycles)
            except PageFaultError:
                expected_cycles.append(None)
        result = batched.prewalk_batch(0, vaddrs)
        got = [None if lvl == LEVEL_FAULT else cycles
               for cycles, lvl in zip(result.cycles.tolist(), result.levels.tolist())]
        assert got == expected_cycles
        assert mmu_state(scalar) == mmu_state(batched)

    def test_translate_data_batch_matches_scalar_and_fault_counts(self):
        scalar, batched, space = self._mmu_pair(pages=4)
        good = [0x10_0000 + i * 4096 for i in range(4)]
        expected = [scalar.translate_data(0, vaddr).cycles for vaddr in good]
        result = batched.translate_data_batch(0, good)
        assert result.cycles.tolist() == expected
        assert mmu_state(scalar) == mmu_state(batched)
        # Now a faulting batch: stats advance for the prefix plus the faulter.
        with pytest.raises(PageFaultError):
            for vaddr in [0x10_0000, 0xBAD_F000]:
                scalar.translate_data(0, vaddr)
        with pytest.raises(PageFaultError):
            batched.translate_data_batch(0, [0x10_0000, 0xBAD_F000])
        assert mmu_state(scalar) == mmu_state(batched)

    def test_unregistered_asid_raises_keyerror(self):
        _, batched, _ = self._mmu_pair()
        with pytest.raises(KeyError):
            batched.prewalk_batch(99, [0x10_0000])


# -------------------------------------------------------------- MATLB parity
class TestMATLBBatchParity:
    def _stack(self, pages=64, matlb_entries=8):
        space = make_space(pages=pages)
        stacks = []
        for _ in range(2):
            mmu = MMU()
            mmu.register_page_table(space.page_table)
            stacks.append((mmu, MATLB(entries=matlb_entries)))
        return stacks[0], stacks[1]

    @settings(max_examples=20, deadline=None)
    @given(vpns=st.lists(st.integers(0, 40), min_size=1, max_size=60),
           entries=st.integers(1, 10))
    def test_prewalk_pages_batch_matches_scalar(self, vpns, entries):
        (mmu_s, matlb_s), (mmu_b, matlb_b) = self._stack(pages=32, matlb_entries=entries)
        pages = [0x10_0000 + vpn * 4096 for vpn in vpns]  # vpns > 31 are unmapped
        scalar_cycles = matlb_s.prewalk_pages(mmu_s, 0, pages)
        batch_cycles = matlb_b.prewalk_pages_batch(mmu_b, 0, pages)
        assert batch_cycles == scalar_cycles
        assert matlb_state(matlb_s) == matlb_state(matlb_b)
        assert mmu_state(mmu_s) == mmu_state(mmu_b)

    def test_lookup_batch_matches_scalar_lookups(self):
        (mmu_s, matlb_s), (mmu_b, matlb_b) = self._stack()
        pages = [0x10_0000 + i * 4096 for i in range(6)]
        for matlb, mmu in ((matlb_s, mmu_s), (matlb_b, mmu_b)):
            matlb.prewalk_pages(mmu, 0, pages[:4])
        vaddrs = [page + 123 for page in pages] + [pages[0] + 4]
        expected = [matlb_s.lookup(vaddr) for vaddr in vaddrs]
        got = matlb_b.lookup_batch(vaddrs)
        assert got.tolist() == [-1 if paddr is None else paddr for paddr in expected]
        assert matlb_state(matlb_s) == matlb_state(matlb_b)

    def test_buffer_matches_detects_exact_order_only(self):
        (mmu, matlb), _ = self._stack(matlb_entries=4)
        pages = [0x10_0000 + i * 4096 for i in range(3)]
        matlb.prewalk_pages(mmu, 0, pages)
        assert matlb.buffer_matches(pages)
        assert not matlb.buffer_matches(list(reversed(pages)))
        assert not matlb.buffer_matches(pages[:2])


# ------------------------------------------------------------- ADE parity
def edge_tile_stream(layout: MatrixLayout):
    """Tile stream over an awkward matrix: edge tiles, repeats, overlaps."""
    tiles = []
    for row in range(0, layout.rows, 48):
        rows = min(48, layout.rows - row)
        for k in range(0, layout.cols, 48):
            cols = min(48, layout.cols - k)
            tiles.append((row, rows, k, cols))
    # Re-visit the first row block to exercise the steady-state fast path.
    tiles += tiles[: len(tiles) // 2]
    return tiles


class TestADETileTranslationParity:
    @pytest.mark.parametrize("prediction", [True, False])
    @pytest.mark.parametrize("stride,rows,cols,eb,matlb_entries", [
        (1000, 200, 1000, 8, 64),    # non-power-of-two stride, fp64
        (1024, 200, 1024, 4, 64),    # page-per-row fp32 (the BERT regime)
        (80, 150, 80, 4, 8),         # tiny rows sharing pages, small mATLB
    ])
    def test_tile_stream_parity(self, prediction, stride, rows, cols, eb, matlb_entries):
        space = make_space(pages=(rows * stride * eb) // 4096 + 2)
        layout = MatrixLayout(0x10_0000, rows, cols, stride, eb)
        tiles = edge_tile_stream(layout)

        def run(batched):
            mmu = MMU()
            mmu.register_page_table(space.page_table)
            ade = AcceleratorDataEngine(matlb=MATLB(entries=matlb_entries))
            translate = ade.translate_tile_batch if batched else ade.translate_tile
            stalls = [
                translate(mmu, 0, layout, (row, tile_rows), (k, depth), prediction)
                for row, tile_rows, k, depth in tiles
            ]
            return stalls, mmu, ade

        scalar_stalls, mmu_s, ade_s = run(batched=False)
        batch_stalls, mmu_b, ade_b = run(batched=True)
        assert batch_stalls == scalar_stalls
        assert matlb_state(ade_s.matlb) == matlb_state(ade_b.matlb)
        assert mmu_state(mmu_s) == mmu_state(mmu_b)
        assert ade_s.translation_stall_cycles == ade_b.translation_stall_cycles
        assert ade_s.demand_translations == ade_b.demand_translations

    def test_demand_page_fault_parity(self):
        """Unmapped pages on the demand path fault identically in both paths."""
        space = make_space(pages=4)
        layout = MatrixLayout(0x10_0000, 16, 1024, 1024, 8)  # needs 32 pages; 4 mapped

        def run(batched):
            mmu = MMU()
            mmu.register_page_table(space.page_table)
            ade = AcceleratorDataEngine(matlb=MATLB(entries=64))
            translate = ade.translate_tile_batch if batched else ade.translate_tile
            with pytest.raises(PageFaultError) as excinfo:
                translate(mmu, 0, layout, (0, 16), (0, 1024), False)
            return excinfo.value.vaddr, mmu, ade

        scalar_vaddr, mmu_s, ade_s = run(batched=False)
        batch_vaddr, mmu_b, ade_b = run(batched=True)
        assert batch_vaddr == scalar_vaddr
        assert mmu_state(mmu_s) == mmu_state(mmu_b)
        assert matlb_state(ade_s.matlb) == matlb_state(ade_b.matlb)
        assert ade_s.demand_translations == ade_b.demand_translations
        assert ade_s.translation_stall_cycles == ade_b.translation_stall_cycles

    @pytest.mark.parametrize("prediction", [True, False])
    def test_demand_fault_mid_stream_preserves_partial_state(self, prediction):
        """Stats/LRU stop at the faulting page exactly as the scalar loop's do."""
        space = make_space(pages=20)
        layout = MatrixLayout(0x10_0000, 40, 1024, 1024, 8)  # 80 pages; 20 mapped

        def run(batched):
            mmu = MMU()
            mmu.register_page_table(space.page_table)
            ade = AcceleratorDataEngine(matlb=MATLB(entries=8))
            translate = ade.translate_tile_batch if batched else ade.translate_tile
            translate(mmu, 0, layout, (0, 8), (0, 1024), prediction)  # mapped tile
            with pytest.raises(PageFaultError) as excinfo:
                translate(mmu, 0, layout, (8, 16), (0, 1024), prediction)
            return excinfo.value.vaddr, mmu, ade

        scalar_vaddr, mmu_s, ade_s = run(batched=False)
        batch_vaddr, mmu_b, ade_b = run(batched=True)
        assert batch_vaddr == scalar_vaddr
        assert mmu_state(mmu_s) == mmu_state(mmu_b)
        assert matlb_state(ade_s.matlb) == matlb_state(ade_b.matlb)
        assert ade_s.demand_translations == ade_b.demand_translations
        assert ade_s.translation_stall_cycles == ade_b.translation_stall_cycles


# --------------------------------------------------------- emulator parity
class TestEmulatorParity:
    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(1, 8),
        cols=st.integers(1, 8),
        tr=st.integers(1, 40),
        seed=st.integers(0, 2**16),
    )
    def test_bit_identical_outputs_and_cycles(self, rows, cols, tr, seed):
        scalar, vector = run_emulator_pair(rows, cols, tr, seed)
        assert np.array_equal(scalar.output, vector.output)  # bitwise, not approx
        assert scalar.cycles == vector.cycles
        assert scalar.macs == vector.macs

    def test_validation_matches_scalar(self):
        vector = VectorizedSystolicArrayEmulator(rows=4, cols=4)
        with pytest.raises(ValueError):
            vector.run_block(np.zeros((4, 3)), np.zeros((4, 4)))
        with pytest.raises(NotImplementedError):
            VectorizedSystolicArrayEmulator(precision=Precision.FP32).run_block(
                np.zeros((4, 4)), np.zeros((4, 4))
            )

    def test_mac_activity_counter_matches_scalar_pes(self):
        rng = np.random.default_rng(3)
        scalar = SystolicArrayEmulator(rows=4, cols=4)
        vector = VectorizedSystolicArrayEmulator(rows=4, cols=4)
        a_block = rng.standard_normal((9, 4))
        b_block = rng.standard_normal((4, 4))
        scalar.run_block(a_block, b_block)
        vector.run_block(a_block, b_block)
        scalar_macs = sum(pe.macs_performed for row in scalar.pes for pe in row)
        assert vector.macs_performed == scalar_macs


# -------------------------------------------------- satellite micro-behaviour
class TestTileCyclesMemo:
    def test_memoized_value_matches_and_caches(self):
        array = SystolicArray(4, 4)
        first = array.tile_cycles(64, 64, 64, Precision.FP32)
        assert (64, 64, 64, Precision.FP32) in array._tile_cycles_cache
        assert array.tile_cycles(64, 64, 64, Precision.FP32) == first

    def test_invalid_tile_still_rejected(self):
        array = SystolicArray(4, 4)
        with pytest.raises(ValueError):
            array.tile_cycles(0, 64, 64)
        with pytest.raises(ValueError):
            array.tile_cycles(0, 64, 64)  # and again: the error is not cached


class TestEventSlots:
    def test_event_has_no_dict(self):
        from repro.sim.event import EventQueue

        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        with pytest.raises(AttributeError):
            event.__dict__
        with pytest.raises(AttributeError):
            event.extra_attribute = 1

    def test_heap_entries_are_tuples(self):
        from repro.sim.event import EventQueue

        queue = EventQueue()
        queue.push(2.0, lambda: None)
        queue.push(1.0, lambda: None, priority=3)
        entry = queue._heap[0]
        assert isinstance(entry, tuple) and entry[0] == 1.0 and entry[1] == 3
        assert queue.pop().time == 1.0
