"""Design-space exploration utilities.

The paper's title is about *exploring* GEMM acceleration on a loosely-coupled
multi-core processor; this module provides the exploration loop a computer
architect would run on top of the reproduction: sweep architectural knobs
(systolic-array geometry, scratchpad capacity, node count, DMA/NoC provisioning,
clock frequencies), evaluate each candidate on a workload with the same
cycle-approximate model used by the paper's figures, and rank the candidates by
throughput, efficiency, or performance per area/watt.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.config import MACOConfig, MMAEConfig, maco_default_config
from repro.core.mapping import partition_gemm
from repro.core.perf import estimate_node_gemm, memory_environment
from repro.gemm.precision import Precision
from repro.gemm.tiling import TileConfig
from repro.gemm.workloads import GEMMShape, GEMMWorkload
from repro.mmae.buffers import BufferSet


@dataclass(frozen=True)
class DesignPoint:
    """One candidate configuration in the exploration space."""

    name: str
    sa_rows: int = 4
    sa_cols: int = 4
    buffer_kb: int = 64              # per A/B/C buffer
    num_nodes: int = 16
    mmae_frequency_ghz: float = 2.5
    dma_engines: int = 2
    prediction_enabled: bool = True

    def __post_init__(self) -> None:
        if self.sa_rows <= 0 or self.sa_cols <= 0:
            raise ValueError("systolic array dimensions must be positive")
        if self.buffer_kb <= 0 or self.num_nodes <= 0 or self.dma_engines <= 0:
            raise ValueError("buffer size, node count and DMA engines must be positive")
        if self.mmae_frequency_ghz <= 0:
            raise ValueError("frequency must be positive")

    def to_config(self, base: Optional[MACOConfig] = None) -> MACOConfig:
        """Materialise this design point as a full MACO configuration."""
        base = base if base is not None else maco_default_config()
        mmae = replace(
            base.mmae,
            sa_rows=self.sa_rows,
            sa_cols=self.sa_cols,
            a_buffer_bytes=self.buffer_kb * 1024,
            b_buffer_bytes=self.buffer_kb * 1024,
            c_buffer_bytes=self.buffer_kb * 1024,
            frequency_hz=self.mmae_frequency_ghz * 1e9,
            dma_engines=self.dma_engines,
            # First-order area/power scaling: the array grows with the PE count,
            # the buffers with their capacity; the controller/ADE stay fixed.
            area_mm2=base.mmae.area_mm2
            * (0.40 + 0.247 * (self.sa_rows * self.sa_cols) / 16.0 + 0.367 * self.buffer_kb / 64.0),
            power_w=base.mmae.power_w
            * (0.40 + 0.35 * (self.sa_rows * self.sa_cols) / 16.0 + 0.25 * self.buffer_kb / 64.0),
        )
        # The software tiling follows the hardware: the second-level tile is the
        # largest square block the (double-buffered) scratchpads can hold, so a
        # larger buffer buys more on-chip reuse and lower DMA demand.
        buffers = BufferSet(
            a_capacity=mmae.a_buffer_bytes,
            b_capacity=mmae.b_buffer_bytes,
            c_capacity=mmae.c_buffer_bytes,
        )
        tile_dim = max(8, buffers.max_tile_dim(Precision.FP64, double_buffered=True))
        level2 = TileConfig(tile_dim, tile_dim)
        level1 = TileConfig(max(base.level1_tile.rows, tile_dim), max(base.level1_tile.cols, tile_dim))
        return replace(
            base,
            num_nodes=self.num_nodes,
            mmae=mmae,
            level1_tile=level1,
            level2_tile=level2,
            prediction_enabled=self.prediction_enabled,
        )


@dataclass
class EvaluationResult:
    """Outcome of evaluating one design point on a workload."""

    point: DesignPoint
    config: MACOConfig
    seconds: float
    gflops: float
    efficiency: float
    node_area_mm2: float
    node_power_w: float

    @property
    def gflops_per_mm2(self) -> float:
        """Throughput per compute-node area (CPU core + MMAE)."""
        return self.gflops / (self.node_area_mm2 * self.config.num_nodes)

    @property
    def gflops_per_watt(self) -> float:
        """Throughput per compute-node power (CPU core + MMAE)."""
        return self.gflops / (self.node_power_w * self.config.num_nodes)


class DesignSpaceExplorer:
    """Evaluates and ranks design points on a GEMM workload."""

    def __init__(self, base_config: Optional[MACOConfig] = None) -> None:
        self.base_config = base_config if base_config is not None else maco_default_config()

    # ------------------------------------------------------------------ sweeping
    @staticmethod
    def grid(
        sa_dims: Sequence[int] = (2, 4, 8),
        buffer_kbs: Sequence[int] = (32, 64, 128),
        node_counts: Sequence[int] = (4, 8, 16),
        prediction: Sequence[bool] = (True,),
    ) -> List[DesignPoint]:
        """A full-factorial grid of design points over the main knobs."""
        points = []
        for dim, buffer_kb, nodes, pred in itertools.product(sa_dims, buffer_kbs, node_counts, prediction):
            points.append(
                DesignPoint(
                    name=f"sa{dim}x{dim}-buf{buffer_kb}k-n{nodes}{'' if pred else '-nopred'}",
                    sa_rows=dim, sa_cols=dim, buffer_kb=buffer_kb, num_nodes=nodes,
                    prediction_enabled=pred,
                )
            )
        return points

    # ---------------------------------------------------------------- evaluation
    def evaluate(self, point: DesignPoint, workload: GEMMWorkload | GEMMShape) -> EvaluationResult:
        """Evaluate one design point on a workload (or a single GEMM shape)."""
        config = point.to_config(self.base_config)
        shapes = [workload] if isinstance(workload, GEMMShape) else list(workload)
        if not shapes:
            raise ValueError("workload has no GEMMs to evaluate")
        precision = shapes[0].precision
        env = memory_environment(config, config.num_nodes)

        total_seconds = 0.0
        total_flops = 0
        for shape in shapes:
            plan = partition_gemm(shape, config.num_nodes)
            layer_seconds = max(
                estimate_node_gemm(config, assignment.shape, active_nodes=config.num_nodes, env=env).seconds
                for assignment in plan.assignments
            )
            total_seconds += layer_seconds
            total_flops += shape.flops

        gflops = total_flops / total_seconds / 1e9 if total_seconds > 0 else 0.0
        peak = config.peak_gflops(precision)
        node_area = config.cpu.area_mm2 + config.mmae.area_mm2
        node_power = config.cpu.power_w + config.mmae.power_w
        return EvaluationResult(
            point=point,
            config=config,
            seconds=total_seconds,
            gflops=gflops,
            efficiency=gflops / peak if peak else 0.0,
            node_area_mm2=node_area,
            node_power_w=node_power,
        )

    def explore(
        self,
        points: Iterable[DesignPoint],
        workload: GEMMWorkload | GEMMShape,
        objective: Callable[[EvaluationResult], float] | str = "gflops",
    ) -> List[EvaluationResult]:
        """Evaluate every point and return the results sorted best-first."""
        key = self._objective(objective)
        results = [self.evaluate(point, workload) for point in points]
        return sorted(results, key=key, reverse=True)

    def best(
        self,
        points: Iterable[DesignPoint],
        workload: GEMMWorkload | GEMMShape,
        objective: Callable[[EvaluationResult], float] | str = "gflops",
    ) -> EvaluationResult:
        """The best design point under the chosen objective."""
        ranked = self.explore(points, workload, objective)
        return ranked[0]

    @staticmethod
    def _objective(objective: Callable[[EvaluationResult], float] | str) -> Callable[[EvaluationResult], float]:
        if callable(objective):
            return objective
        known: Dict[str, Callable[[EvaluationResult], float]] = {
            "gflops": lambda r: r.gflops,
            "efficiency": lambda r: r.efficiency,
            "gflops_per_mm2": lambda r: r.gflops_per_mm2,
            "gflops_per_watt": lambda r: r.gflops_per_watt,
        }
        if objective not in known:
            raise ValueError(f"unknown objective {objective!r}; options: {sorted(known)}")
        return known[objective]


def pareto_front(
    results: Sequence[EvaluationResult],
    metrics: Sequence[Callable[[EvaluationResult], float]] = (
        lambda r: r.gflops,
        lambda r: r.gflops_per_watt,
    ),
) -> List[EvaluationResult]:
    """The subset of results not dominated on all of the given metrics."""
    front = []
    for candidate in results:
        candidate_scores = [metric(candidate) for metric in metrics]
        dominated = False
        for other in results:
            if other is candidate:
                continue
            other_scores = [metric(other) for metric in metrics]
            if all(o >= c for o, c in zip(other_scores, candidate_scores)) and any(
                o > c for o, c in zip(other_scores, candidate_scores)
            ):
                dominated = True
                break
        if not dominated:
            front.append(candidate)
    return front
