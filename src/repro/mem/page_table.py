"""Page tables, address spaces and the page-table walker.

MACO runs a modified Linux on the FPGA prototype; for the reproduction we only
need the parts of virtual memory that the MMAE interacts with: per-process
(ASID-tagged) page tables, a frame allocator, and a page-table walker whose
latency is what the mATLB's predictive translation hides (paper Section IV.A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.mem.address import DEFAULT_PAGE_SIZE, page_number, page_offset


class PageFaultError(Exception):
    """Raised when a virtual address has no mapping in the current address space."""

    def __init__(self, asid: int, vaddr: int) -> None:
        super().__init__(f"page fault: ASID {asid}, virtual address {vaddr:#x}")
        self.asid = asid
        self.vaddr = vaddr


@dataclass
class FrameAllocator:
    """Hands out physical frames from a flat physical address space."""

    total_frames: int
    page_size: int = DEFAULT_PAGE_SIZE
    _next_frame: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.total_frames <= 0:
            raise ValueError("total_frames must be positive")

    @property
    def frames_allocated(self) -> int:
        return self._next_frame

    @property
    def frames_free(self) -> int:
        return self.total_frames - self._next_frame

    def allocate(self, count: int = 1) -> list[int]:
        """Allocate ``count`` consecutive physical frame numbers."""
        if count <= 0:
            raise ValueError("count must be positive")
        if self._next_frame + count > self.total_frames:
            raise MemoryError(
                f"out of physical frames: requested {count}, free {self.frames_free}"
            )
        frames = list(range(self._next_frame, self._next_frame + count))
        self._next_frame += count
        return frames


@dataclass
class PageTable:
    """A per-process map from virtual page numbers to physical frame numbers.

    The model is flat but the walker charges the latency of a multi-level walk
    (``levels`` memory accesses), which is what matters for Fig. 6.
    """

    asid: int
    page_size: int = DEFAULT_PAGE_SIZE
    levels: int = 4
    _entries: Dict[int, int] = field(default_factory=dict, init=False)

    def map_page(self, vpn: int, pfn: int) -> None:
        if vpn < 0 or pfn < 0:
            raise ValueError("page numbers must be non-negative")
        self._entries[vpn] = pfn

    def unmap_page(self, vpn: int) -> None:
        self._entries.pop(vpn, None)

    def lookup(self, vpn: int) -> Optional[int]:
        return self._entries.get(vpn)

    def is_mapped(self, vaddr: int) -> bool:
        return page_number(vaddr, self.page_size) in self._entries

    def translate(self, vaddr: int) -> int:
        """Translate a virtual address; raises :class:`PageFaultError` if unmapped."""
        vpn = page_number(vaddr, self.page_size)
        pfn = self._entries.get(vpn)
        if pfn is None:
            raise PageFaultError(self.asid, vaddr)
        return pfn * self.page_size + page_offset(vaddr, self.page_size)

    # ------------------------------------------------------------------- batch
    def mapped_mask(self, vaddrs: np.ndarray) -> np.ndarray:
        """Boolean mask of which virtual addresses have a mapping.

        Vectorized companion of :meth:`is_mapped`: the (typically few) distinct
        pages are resolved through the entry dict once and broadcast back over
        the address array.
        """
        v = np.asarray(vaddrs, dtype=np.int64)
        shift = self.page_size.bit_length() - 1
        uniq, inverse = np.unique(v >> shift, return_inverse=True)
        entries = self._entries
        hit = np.fromiter(
            (vpn in entries for vpn in uniq.tolist()), dtype=bool, count=len(uniq)
        )
        return hit[inverse].reshape(v.shape)

    def translate_batch(self, vaddrs: Sequence[int]) -> np.ndarray:
        """Translate many virtual addresses at once.

        Equivalent to calling :meth:`translate` per address, including raising
        :class:`PageFaultError` for the first unmapped address in input order.
        """
        v = np.asarray(vaddrs, dtype=np.int64)
        shift = self.page_size.bit_length() - 1
        vpns = v >> shift
        uniq, inverse = np.unique(vpns, return_inverse=True)
        inverse = inverse.reshape(v.shape)
        entries = self._entries
        pfns = np.empty(len(uniq), dtype=np.int64)
        missing = False
        for index, vpn in enumerate(uniq.tolist()):
            pfn = entries.get(vpn)
            if pfn is None:
                pfns[index] = -1
                missing = True
            else:
                pfns[index] = pfn
        if missing:
            bad = int(v[pfns[inverse] < 0][0])
            raise PageFaultError(self.asid, bad)
        return (pfns[inverse] << shift) | (v & (self.page_size - 1))

    @property
    def mapped_pages(self) -> int:
        return len(self._entries)


@dataclass
class AddressSpace:
    """An ASID plus its page table and a simple bump allocator for regions."""

    asid: int
    frame_allocator: FrameAllocator
    page_size: int = DEFAULT_PAGE_SIZE
    page_table: PageTable = field(init=False)
    _next_vaddr: int = field(default=0x10_0000, init=False)
    _regions: Dict[str, tuple[int, int]] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        self.page_table = PageTable(asid=self.asid, page_size=self.page_size)

    def allocate_region(self, name: str, size_bytes: int) -> int:
        """Allocate and map a named, page-aligned region; returns its base virtual address."""
        if size_bytes <= 0:
            raise ValueError("region size must be positive")
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        pages = -(-size_bytes // self.page_size)
        base_vaddr = self._next_vaddr
        base_vpn = page_number(base_vaddr, self.page_size)
        frames = self.frame_allocator.allocate(pages)
        for offset, pfn in enumerate(frames):
            self.page_table.map_page(base_vpn + offset, pfn)
        self._next_vaddr += pages * self.page_size
        self._regions[name] = (base_vaddr, size_bytes)
        return base_vaddr

    def region(self, name: str) -> tuple[int, int]:
        """Return ``(base_vaddr, size_bytes)`` of a previously allocated region."""
        if name not in self._regions:
            raise KeyError(f"no region named {name!r}")
        return self._regions[name]

    def regions(self) -> Iterable[str]:
        return self._regions.keys()

    def translate(self, vaddr: int) -> int:
        return self.page_table.translate(vaddr)


@dataclass
class WalkResult:
    """Outcome of a page-table walk."""

    paddr: int
    cycles: int
    memory_accesses: int


class PageTableWalker:
    """Charges the latency of walking a multi-level page table.

    Each level costs one memory access; accesses that hit in the (physically
    tagged) cache hierarchy are cheaper than those that go to DRAM.  The walker
    keeps a small cache of recently used page-table lines to model the common
    case where consecutive walks share upper-level entries.

    The walk cache is a FIFO of ``walk_cache_entries`` lines, represented as a
    map from line key to the insertion sequence number: a line is resident iff
    its last insertion lies within the most recent ``walk_cache_entries``
    insertions.  This is exactly equivalent to evicting the oldest entry of an
    insertion-ordered dict (every insertion targets a line that just missed,
    so the live lines are always the last ``walk_cache_entries`` insertions),
    but it needs no per-insert eviction bookkeeping, which keeps the batched
    :meth:`walk_batch` loop tight.
    """

    def __init__(
        self,
        memory_latency_cycles: int = 160,
        cached_level_latency_cycles: int = 12,
        walk_cache_entries: int = 64,
    ) -> None:
        if memory_latency_cycles <= 0 or cached_level_latency_cycles <= 0:
            raise ValueError("latencies must be positive")
        self.memory_latency_cycles = memory_latency_cycles
        self.cached_level_latency_cycles = cached_level_latency_cycles
        self.walk_cache_entries = walk_cache_entries
        self._walk_cache: Dict[tuple[int, int], int] = {}  # line key -> insertion number
        self._inserts = 0
        self.walks_performed = 0
        self.total_walk_cycles = 0

    def _walk_cycles(self, asid: int, vpn: int, levels: int) -> int:
        """Charge one walk's cache accesses; shared by the scalar and batch paths."""
        cache = self._walk_cache
        capacity = self.walk_cache_entries
        cheap = self.cached_level_latency_cycles
        expensive = self.memory_latency_cycles
        inserts = self._inserts
        cycles = 0
        for level in range(levels):
            # Upper levels cover huge regions, so they almost always hit the walk cache;
            # the leaf level is the one that typically misses for streaming access.
            key = (asid, vpn >> (9 * (levels - 1 - level)))
            stamp = cache.get(key)
            if stamp is not None and stamp >= inserts - capacity:
                cycles += cheap
            else:
                cycles += expensive
                cache[key] = inserts
                inserts += 1
        self._inserts = inserts
        if len(cache) > 4 * capacity + 256:
            # Drop stale (already evicted) stamps so the map stays bounded.
            floor = inserts - capacity
            self._walk_cache = {k: t for k, t in cache.items() if t >= floor}
        return cycles

    def walk(self, page_table: PageTable, vaddr: int) -> WalkResult:
        """Walk ``page_table`` for ``vaddr``, returning the translation and its cost."""
        paddr = page_table.translate(vaddr)  # raises PageFaultError if unmapped
        vpn = page_number(vaddr, page_table.page_size)
        cycles = self._walk_cycles(page_table.asid, vpn, page_table.levels)
        self.walks_performed += 1
        self.total_walk_cycles += cycles
        return WalkResult(paddr=paddr, cycles=cycles, memory_accesses=page_table.levels)

    def walk_batch(self, page_table: PageTable, vaddrs: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Walk many addresses; returns ``(paddrs, cycles)`` arrays.

        Equivalent to calling :meth:`walk` per address in order (same walk-cache
        evolution and stats), with the translation itself vectorized and the
        cache charging done in one tight loop.  The batch must be fully mapped:
        an unmapped address raises :class:`PageFaultError` before any state is
        touched, so callers that need the scalar loop's partial-progress fault
        semantics must pre-filter with :meth:`PageTable.mapped_mask`.
        """
        v = np.asarray(vaddrs, dtype=np.int64)
        paddrs = page_table.translate_batch(v)
        shift = page_table.page_size.bit_length() - 1
        levels = page_table.levels
        asid = page_table.asid
        charge = self._walk_cycles
        cycles = np.fromiter(
            (charge(asid, vpn, levels) for vpn in (v >> shift).tolist()),
            dtype=np.int64,
            count=len(v),
        )
        self.walks_performed += len(v)
        self.total_walk_cycles += int(cycles.sum())
        return paddrs, cycles

    @property
    def average_walk_cycles(self) -> float:
        return self.total_walk_cycles / self.walks_performed if self.walks_performed else 0.0
