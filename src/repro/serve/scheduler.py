"""Dispatch policies for the serving simulator.

A scheduler owns the ready queue between request arrival and dispatch onto a
compute node.  Three non-preemptive policies are provided:

* :class:`FCFSScheduler` — first come, first served (arrival order);
* :class:`SJFScheduler` — shortest estimated job first, using the analytic
  per-request service-time estimate;
* :class:`RoundRobinScheduler` — one FIFO queue per tenant, served cyclically
  in first-seen tenant order, so no tenant can starve the others.

All policies break ties on ``(arrival time, request id)``, which makes every
pop — and therefore the whole simulation — deterministic.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from typing import Callable, List, Optional, Tuple

from repro.serve.trace import Request

__all__ = [
    "Scheduler",
    "FCFSScheduler",
    "SJFScheduler",
    "RoundRobinScheduler",
    "SCHEDULER_NAMES",
    "scheduler_by_name",
]


class Scheduler:
    """Base class: a queue of ready requests with a policy-defined pop order."""

    #: Policy name used by the CLI and the report.
    name = "base"

    def push(self, request: Request) -> None:
        """Admit an arrived request into the ready queue."""
        raise NotImplementedError

    def pop(self) -> Request:
        """Remove and return the next request to dispatch."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FCFSScheduler(Scheduler):
    """First come, first served: dispatch in arrival order."""

    name = "fcfs"

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Request]] = []

    def push(self, request: Request) -> None:
        heapq.heappush(self._heap, (request.arrival_s, request.request_id, request))

    def pop(self) -> Request:
        if not self._heap:
            raise IndexError("pop from an empty scheduler")
        return heapq.heappop(self._heap)[-1]

    def __len__(self) -> int:
        return len(self._heap)


class SJFScheduler(Scheduler):
    """Shortest (estimated) job first.

    ``estimator`` maps a request to its estimated service seconds; the queue
    orders by ``(service estimate, arrival, id)``.  Non-preemptive: a long
    request already running is never displaced.
    """

    name = "sjf"

    def __init__(self, estimator: Callable[[Request], float]) -> None:
        self._estimator = estimator
        self._heap: List[Tuple[float, float, int, Request]] = []

    def push(self, request: Request) -> None:
        estimate = self._estimator(request)
        heapq.heappush(self._heap, (estimate, request.arrival_s, request.request_id, request))

    def pop(self) -> Request:
        if not self._heap:
            raise IndexError("pop from an empty scheduler")
        return heapq.heappop(self._heap)[-1]

    def __len__(self) -> int:
        return len(self._heap)


class RoundRobinScheduler(Scheduler):
    """Round robin across tenants: per-tenant FIFO queues served cyclically.

    Tenants enter the rotation in first-seen order; empty queues are skipped.
    This is the fairness policy: one chatty tenant cannot monopolise the
    fleet, it only drains its own queue faster than it fills.
    """

    name = "rr"

    def __init__(self) -> None:
        self._queues: "OrderedDict[str, Deque[Request]]" = OrderedDict()
        self._rotation: List[str] = []
        self._cursor = 0
        self._size = 0

    def push(self, request: Request) -> None:
        if request.tenant not in self._queues:
            self._queues[request.tenant] = deque()
            self._rotation.append(request.tenant)
        self._queues[request.tenant].append(request)
        self._size += 1

    def pop(self) -> Request:
        if self._size == 0:
            raise IndexError("pop from an empty scheduler")
        for _ in range(len(self._rotation)):
            tenant = self._rotation[self._cursor]
            self._cursor = (self._cursor + 1) % len(self._rotation)
            queue = self._queues[tenant]
            if queue:
                self._size -= 1
                return queue.popleft()
        raise AssertionError("size bookkeeping out of sync")  # pragma: no cover

    def __len__(self) -> int:
        return self._size


#: CLI-facing policy names in the order they are documented.
SCHEDULER_NAMES = ("fcfs", "sjf", "rr")


def scheduler_by_name(
    name: str, estimator: Optional[Callable[[Request], float]] = None
) -> Scheduler:
    """Build a scheduler by policy name (``fcfs``, ``sjf``, ``rr``).

    ``sjf`` requires ``estimator`` (request -> estimated service seconds).
    """
    key = name.strip().lower()
    if key == "fcfs":
        return FCFSScheduler()
    if key == "sjf":
        if estimator is None:
            raise ValueError("the sjf policy needs a service-time estimator")
        return SJFScheduler(estimator)
    if key == "rr":
        return RoundRobinScheduler()
    raise ValueError(f"unknown scheduler {name!r}; options: {list(SCHEDULER_NAMES)}")
