"""Ablation (Section III.A) — the SIMD-like FP32x2 / FP16x4 compute modes.

The paper extends the classical FP64 systolic dataflow with 2-way FP32 and
4-way FP16 modes (Fig. 2(c)/(d)).  This harness sweeps the three precisions on
a single node and checks that the achieved throughput scales with the lane
count while efficiency stays high — i.e. the extra lanes are actually usable,
not just a peak-rate claim.
"""

import pytest

from repro.analysis import format_gflops, format_percent, render_table
from repro.core import estimate_node_gemm
from repro.gemm import GEMMShape, Precision

MATRIX_SIZE = 4096


def test_ablation_precision_modes(benchmark, paper_config):
    def regenerate():
        results = {}
        for precision in (Precision.FP64, Precision.FP32, Precision.FP16):
            shape = GEMMShape(MATRIX_SIZE, MATRIX_SIZE, MATRIX_SIZE, precision)
            results[precision] = estimate_node_gemm(paper_config, shape, active_nodes=1)
        return results

    results = benchmark(regenerate)

    rows = []
    for precision, timing in results.items():
        rows.append([
            str(precision),
            f"{precision.simd_ways}-way",
            format_gflops(timing.peak_gflops),
            format_gflops(timing.achieved_gflops),
            format_percent(timing.efficiency),
        ])
    print("\n" + render_table(
        ["precision", "SIMD lanes", "peak", "achieved", "efficiency"],
        rows,
        title=f"Ablation - SIMD compute modes on a {MATRIX_SIZE}^3 GEMM (single node)",
    ))

    fp64, fp32, fp16 = (results[p] for p in (Precision.FP64, Precision.FP32, Precision.FP16))
    # Peak rates follow the paper's 80 / 160 / 320 GFLOPS per node.
    assert fp64.peak_gflops == pytest.approx(80.0)
    assert fp32.peak_gflops == pytest.approx(160.0)
    assert fp16.peak_gflops == pytest.approx(320.0)
    # Achieved throughput scales close to the lane count.
    assert fp32.achieved_gflops > 1.8 * fp64.achieved_gflops
    assert fp16.achieved_gflops > 3.3 * fp64.achieved_gflops
    # All modes stay efficient on a large GEMM.
    for timing in results.values():
        assert timing.efficiency > 0.85
