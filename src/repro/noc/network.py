"""Transaction-level mesh network model.

:class:`MeshNetwork` routes packets hop by hop with X-Y routing, charging
router pipeline latency and link serialization on every hop and modelling
contention through per-link virtual-channel occupancy.  It is used by the
functional/integration tests and by the coherence-traffic accounting; the
large parameter sweeps use the closed-form :class:`~repro.noc.contention.NocContentionModel`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.noc.flit import Packet
from repro.noc.mesh import MeshTopology
from repro.noc.router import Router
from repro.noc.routing import xy_route


@dataclass(frozen=True)
class NocConfig:
    """NoC parameters from the paper: 4x4 mesh, 256-bit links at 2 GHz."""

    width: int = 4
    height: int = 4
    link_width_bytes: int = 32
    frequency_hz: float = 2.0e9
    virtual_channels: int = 4
    router_pipeline_cycles: int = 3

    def __post_init__(self) -> None:
        if self.link_width_bytes <= 0 or self.frequency_hz <= 0:
            raise ValueError("invalid NoC configuration")

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz

    @property
    def link_bandwidth_bytes_per_s(self) -> float:
        """Unidirectional bandwidth of one link."""
        return self.link_width_bytes * self.frequency_hz

    @property
    def node_bandwidth_bytes_per_s(self) -> float:
        """Bidirectional injection/ejection bandwidth available to one node (128 GB/s)."""
        return 2 * self.link_bandwidth_bytes_per_s


@dataclass
class TransferResult:
    """Outcome of sending one packet through the network."""

    packet: Packet
    path: List[int]
    latency_s: float
    hops: int


class MeshNetwork:
    """The 4x4 mesh with a router per node."""

    def __init__(self, config: Optional[NocConfig] = None) -> None:
        self.config = config if config is not None else NocConfig()
        self.topology = MeshTopology(self.config.width, self.config.height)
        self.routers: Dict[int, Router] = {
            node_id: Router(
                node_id,
                num_virtual_channels=self.config.virtual_channels,
                pipeline_latency_cycles=self.config.router_pipeline_cycles,
            )
            for node_id in range(self.topology.num_nodes)
        }
        self._packet_ids = itertools.count()
        self.packets_sent = 0
        self.bytes_sent = 0
        self.total_latency_s = 0.0

    def make_packet(self, src: int, dst: int, payload_bytes: int, virtual_channel: int = 0) -> Packet:
        """Build a packet with a fresh id, sized for this network's link width."""
        return Packet(
            packet_id=next(self._packet_ids),
            src=src,
            dst=dst,
            payload_bytes=payload_bytes,
            link_width_bytes=self.config.link_width_bytes,
            virtual_channel=virtual_channel,
        )

    def send(self, src: int, dst: int, payload_bytes: int, time: float = 0.0, virtual_channel: int = 0) -> TransferResult:
        """Send a packet and return its delivery result.

        A zero-hop (src == dst) transfer only pays the local ejection latency.
        """
        packet = self.make_packet(src, dst, payload_bytes, virtual_channel)
        packet.injection_time = time
        path = xy_route(self.topology, src, dst)
        cycle_time = self.config.cycle_time_s
        current_time = time
        for hop_src, hop_dst in zip(path[:-1], path[1:]):
            router = self.routers[hop_src]
            current_time = router.forward(packet, hop_dst, current_time, cycle_time)
        # Ejection at the destination router.
        current_time += self.config.router_pipeline_cycles * cycle_time
        packet.delivery_time = current_time
        self.packets_sent += 1
        self.bytes_sent += payload_bytes
        self.total_latency_s += packet.latency
        return TransferResult(
            packet=packet,
            path=path,
            latency_s=packet.latency,
            hops=len(path) - 1,
        )

    def zero_load_latency_s(self, src: int, dst: int, payload_bytes: int) -> float:
        """Latency of a packet on an otherwise idle network."""
        hops = self.topology.hop_distance(src, dst)
        cycle_time = self.config.cycle_time_s
        serialization = max(1, -(-payload_bytes // self.config.link_width_bytes)) * cycle_time
        return (hops + 1) * self.config.router_pipeline_cycles * cycle_time + hops * serialization

    @property
    def average_latency_s(self) -> float:
        """Mean injection-to-delivery latency over every packet sent so far."""
        return self.total_latency_s / self.packets_sent if self.packets_sent else 0.0
