#!/usr/bin/env python
"""Deep-learning inference on MACO: the workloads behind the paper's Fig. 8.

Runs ResNet-50, BERT-large and a GPT-3 proxy (FP32 inference) on a MACO
configuration with 256 FP32 MAC lanes (8 compute nodes), and compares against
the four baseline systems of the paper: CPU-only (Baseline-1), MACO without
the mapping scheme (Baseline-2), a RASA-like tightly-coupled engine, and a
Gemmini-like loosely-coupled accelerator.
"""

from repro.analysis import format_gflops, render_table
from repro.baselines import (
    CPUOnlyBaseline,
    GemminiLikeBaseline,
    NoMappingBaseline,
    RASALikeBaseline,
    compare_systems,
)
from repro.core import MACOSystem, maco_default_config
from repro.core.metrics import WorkloadResult
from repro.gemm import Precision
from repro.workloads import dl_benchmark_suite

NUM_NODES = 8  # 8 nodes x 32 FP32 MAC lanes = 256 lanes (the paper's 16x16 PE budget)


class _MACOAdapter:
    """Makes MACOSystem look like a baseline model for compare_systems()."""

    name = "maco"

    def __init__(self, config) -> None:
        self.config = config
        self.system = MACOSystem(config)

    def run_workload(self, workload, num_nodes=None) -> WorkloadResult:
        result = self.system.run_workload(workload, num_nodes=num_nodes)
        result.system = self.name
        return result


def main() -> None:
    config = maco_default_config(num_nodes=NUM_NODES)
    systems = [
        CPUOnlyBaseline(config),
        NoMappingBaseline(config),
        RASALikeBaseline(config),
        GemminiLikeBaseline(config),
        _MACOAdapter(config),
    ]
    workloads = dl_benchmark_suite()
    comparison = compare_systems(systems, workloads, num_nodes=NUM_NODES)

    headers = ["system"] + [w.name for w in workloads] + ["geomean gain of MACO"]
    rows = []
    for system in systems:
        cells = [system.name]
        for workload in workloads:
            cells.append(format_gflops(comparison.throughput(system.name, workload.name)))
        if system.name == "maco":
            cells.append("1.00x")
        else:
            cells.append(f"{comparison.average_speedup('maco', system.name):.2f}x")
        rows.append(cells)
    print(render_table(headers, rows, title=f"DL inference throughput ({NUM_NODES} compute nodes, FP32)"))

    best = comparison.best_throughput("maco")
    peak = config.peak_gflops(Precision.FP32)
    print(f"\nMACO best observed throughput: {format_gflops(best)} "
          f"({best / peak * 100:.1f}% of the {format_gflops(peak)} aggregate peak)")


if __name__ == "__main__":
    main()
