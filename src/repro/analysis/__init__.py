"""Analysis helpers: area/power model (Table IV), efficiency summaries, reporting."""

from repro.analysis.area_power import (
    ComponentBudget,
    AreaPowerComparison,
    cpu_budget,
    mmae_budget,
    compare_cpu_mmae,
    mmae_area_breakdown,
)
from repro.analysis.efficiency import (
    efficiency_gap,
    efficiency_by_size,
    average_gap,
    summarize_scalability,
)
from repro.analysis.reporting import (
    render_table,
    render_series,
    render_csv,
    format_gflops,
    format_percent,
    latency_summary,
    percentile,
)
from repro.analysis.roofline import Roofline, RooflinePoint, node_roofline, place_gemm, roofline_sweep
from repro.analysis.energy import EnergyBreakdown, EnergyModel, PowerParameters

__all__ = [
    "Roofline",
    "RooflinePoint",
    "node_roofline",
    "place_gemm",
    "roofline_sweep",
    "EnergyBreakdown",
    "EnergyModel",
    "PowerParameters",
    "ComponentBudget",
    "AreaPowerComparison",
    "cpu_budget",
    "mmae_budget",
    "compare_cpu_mmae",
    "mmae_area_breakdown",
    "efficiency_gap",
    "efficiency_by_size",
    "average_gap",
    "summarize_scalability",
    "render_table",
    "render_series",
    "render_csv",
    "format_gflops",
    "format_percent",
    "latency_summary",
    "percentile",
]
