"""Binary encoding of MPAIS instructions.

MPAIS extends ARMv8, so the encoding follows the A64 fixed-width 32-bit format
and claims an unallocated slice of the encoding space.  The layout is::

    31           22 21      16 15       10 9        5 4        0
    +--------------+----------+-----------+----------+----------+
    |  1111000111  |  funct6  |  reserved |    Rn    |    Rd    |
    +--------------+----------+-----------+----------+----------+

``funct6`` selects one of the seven MPAIS operations.  The reserved field is
encoded as zero and must decode as zero (otherwise the word is rejected), so
future extensions (e.g. additional precisions) have space to grow.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction, Opcode

#: The top-10-bit major opcode claimed from the unallocated ARMv8 space.
MPAIS_OPCODE_SPACE = 0b1111000111

_FUNCT_CODES = {
    Opcode.MA_MOVE: 0b000001,
    Opcode.MA_INIT: 0b000010,
    Opcode.MA_STASH: 0b000011,
    Opcode.MA_CFG: 0b000100,
    Opcode.MA_READ: 0b000101,
    Opcode.MA_STATE: 0b000110,
    Opcode.MA_CLEAR: 0b000111,
}
_OPCODE_FROM_FUNCT = {code: opcode for opcode, code in _FUNCT_CODES.items()}


class EncodingError(Exception):
    """Raised when a 32-bit word is not a valid MPAIS instruction."""


def encode_instruction(instruction: Instruction) -> int:
    """Encode an :class:`Instruction` into its 32-bit machine word."""
    funct = _FUNCT_CODES[instruction.opcode]
    word = (
        (MPAIS_OPCODE_SPACE << 22)
        | (funct << 16)
        | (instruction.rn << 5)
        | instruction.rd
    )
    return word


def decode_instruction(word: int) -> Instruction:
    """Decode a 32-bit machine word back into an :class:`Instruction`.

    Raises :class:`EncodingError` if the word is not in the MPAIS space or uses
    a reserved encoding.
    """
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    if (word >> 22) != MPAIS_OPCODE_SPACE:
        raise EncodingError(f"word {word:#010x} is not an MPAIS instruction")
    funct = (word >> 16) & 0b111111
    if funct not in _OPCODE_FROM_FUNCT:
        raise EncodingError(f"unknown MPAIS funct code {funct:#08b}")
    reserved = (word >> 10) & 0b111111
    if reserved != 0:
        raise EncodingError(f"reserved field must be zero, got {reserved:#08b}")
    rn = (word >> 5) & 0b11111
    rd = word & 0b11111
    return Instruction(opcode=_OPCODE_FROM_FUNCT[funct], rd=rd, rn=rn)


def is_mpais_word(word: int) -> bool:
    """Cheap test used by the decoder front-end to steer words to the MPAIS unit."""
    return 0 <= word < (1 << 32) and (word >> 22) == MPAIS_OPCODE_SPACE
