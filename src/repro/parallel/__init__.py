"""Multi-node parallel execution: shard workload graphs across the mesh.

The design space the paper sweeps is multi-node, but a single request still
executed its GEMM phases on one node at a time.  This package partitions a
:class:`~repro.workloads.graph.WorkloadGraph` across a group of compute
nodes — 1-D tensor parallel (split GEMM free dimensions, exchange partials),
2-D SUMMA tensor parallel (``tp2d:RxC`` grids with pipelined, compute-
overlapped panel broadcasts), or pipeline parallel (assign phase blocks to
node stages, hand activations over) — with every collective priced on the
actual mesh through
:class:`~repro.parallel.collective.CollectiveCostModel` (X-Y routes, link
sharing, background groups, gather/broadcast asymmetry) rather than a flat
bandwidth constant.

Consumers: ``repro.cli parallel`` renders plans, ``repro.cli explore
--parallel`` evaluates design points under a sharding, and the serving
simulator (``repro.cli serve --parallel``) serves each request on a node
group so tenant latency reflects sharded execution plus the NoC contention
between co-scheduled groups.  See docs/PARALLELISM.md for derivations.
"""

from repro.parallel.collective import DEFAULT_GATHER_ASYMMETRY, CollectiveCostModel
from repro.parallel.partitioner import (
    PARALLEL_STRATEGIES,
    PARALLELISM_STRATEGIES,
    ParallelPlan,
    ParallelismSpec,
    PhasePlan,
    StrategyInfo,
    node_groups,
    plan_parallel,
)
from repro.parallel.summa import (
    OVERHEAD_COMPONENT_SHARES,
    OverheadBreakdown,
    calibrate_overhead_factor,
    summa_grid,
    summa_pipeline_seconds,
    summa_steps,
)

__all__ = [
    "CollectiveCostModel",
    "DEFAULT_GATHER_ASYMMETRY",
    "OVERHEAD_COMPONENT_SHARES",
    "OverheadBreakdown",
    "PARALLELISM_STRATEGIES",
    "PARALLEL_STRATEGIES",
    "ParallelPlan",
    "ParallelismSpec",
    "PhasePlan",
    "StrategyInfo",
    "calibrate_overhead_factor",
    "node_groups",
    "plan_parallel",
    "summa_grid",
    "summa_pipeline_seconds",
    "summa_steps",
]
