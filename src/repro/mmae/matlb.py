"""Predictive address translation: the mATLB (paper Section IV.A).

The MMAE's DMA engines operate on virtual addresses, and for large matrices a
tile's rows land on many different pages (Fig. 4), so demand page-table walks
would stall the DMA streams.  The mATLB exploits the fact that the access
pattern is fully determined by the GEMM parameters (matrix column count, tile
size, page size) that the CPU configures in advance:

1. the :class:`PageTablePredictor` computes, for each upcoming tile, the
   virtual address of the first element in every page the tile will touch;
2. the mATLB sends those addresses to the CPU core's MMU for page-table walks
   ahead of time and buffers the returned translations locally;
3. the DMA engines consume translations from the buffer, so the walk latency
   overlaps with computation instead of stalling the transfer.

Two views are provided: a functional mATLB used by the small-scale tests, and
a closed-form :func:`estimate_translation_stalls` used by the parameter
sweeps of Fig. 6 (see DESIGN.md for the derivation and calibration).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.gemm.tiling import TileConfig, TwoLevelTiling
from repro.gemm.workloads import GEMMShape
from repro.mem.address import DEFAULT_PAGE_SIZE, align_down
from repro.mem.page_table import PageFaultError


# --------------------------------------------------------------------------- prediction
@dataclass(frozen=True)
class MatrixLayout:
    """Row-major layout of one operand matrix in virtual memory."""

    base_vaddr: int
    rows: int
    cols: int
    row_stride_elements: int
    element_bytes: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        if self.row_stride_elements < self.cols:
            raise ValueError("row stride cannot be smaller than the column count")

    def element_vaddr(self, row: int, col: int) -> int:
        return self.base_vaddr + (row * self.row_stride_elements + col) * self.element_bytes


class PageTablePredictor:
    """Computes which pages a rectangular tile of a matrix will touch (Fig. 4).

    The enumeration is vectorized: the per-row page runs collapse to
    ``arange``/``unique`` arithmetic, and because the page pattern of a tile
    depends only on its geometry (row count, segment bytes, row stride) and on
    the first element's offset within its page, interior tiles of a sweep share
    one cached *offset template* that is rebased per tile instead of being
    re-enumerated.  :meth:`tile_page_addresses_scalar` retains the original
    element-at-a-time reference; the two are bit-identical, page order
    included, which the parity tests enforce.
    """

    #: Geometry templates kept before the memo is reset (each is a small array).
    TEMPLATE_CACHE_ENTRIES = 1024

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page size must be a positive power of two")
        self.page_size = page_size
        self._templates: Dict[Tuple[int, int, int, int], np.ndarray] = {}

    def _check_tile(
        self, layout: MatrixLayout, row_start: int, row_count: int, col_start: int, col_count: int
    ) -> None:
        if row_start < 0 or col_start < 0:
            raise ValueError("tile origin must be non-negative")
        if row_start + row_count > layout.rows or col_start + col_count > layout.cols:
            raise ValueError("tile exceeds the matrix bounds")

    def tile_page_addresses_scalar(
        self,
        layout: MatrixLayout,
        row_start: int,
        row_count: int,
        col_start: int,
        col_count: int,
    ) -> List[int]:
        """Element-at-a-time reference enumeration (the pre-vectorization path)."""
        self._check_tile(layout, row_start, row_count, col_start, col_count)
        pages: List[int] = []
        seen: Set[int] = set()
        for row in range(row_start, row_start + row_count):
            first = layout.element_vaddr(row, col_start)
            last = layout.element_vaddr(row, col_start + col_count - 1) + layout.element_bytes - 1
            page = align_down(first, self.page_size)
            while page <= last:
                if page not in seen:
                    seen.add(page)
                    pages.append(page)
                page += self.page_size
        return pages

    def _page_offsets(self, first_offset: int, row_count: int, segment_bytes: int,
                      row_stride_bytes: int) -> np.ndarray:
        """Deduplicated page offsets (relative to the first element's page base).

        ``first_offset`` is the first element's offset within its page; the
        returned array is the tile's page-aligned addresses minus
        ``align_down(first_element_vaddr, page_size)``, in access order.
        """
        shift = self.page_size.bit_length() - 1
        rows = np.arange(row_count, dtype=np.int64)
        row_first = first_offset + rows * row_stride_bytes
        row_last = row_first + segment_bytes - 1
        first_page = row_first >> shift
        counts = (row_last >> shift) - first_page + 1
        total = int(counts.sum())
        if total <= 0:
            return np.empty(0, dtype=np.int64)
        # Flatten the per-row page runs: page index p of row r is
        # first_page[r] + p, visited rows-outer / pages-inner.
        run_starts = np.cumsum(counts) - counts
        flat = np.repeat(first_page, counts) + (
            np.arange(total, dtype=np.int64) - np.repeat(run_starts, counts)
        )
        # Deduplicate keeping the first occurrence, preserving access order.
        _, first_seen = np.unique(flat, return_index=True)
        return flat[np.sort(first_seen)] << shift

    def tile_page_vaddrs(
        self,
        layout: MatrixLayout,
        row_start: int,
        row_count: int,
        col_start: int,
        col_count: int,
    ) -> np.ndarray:
        """Vectorized :meth:`tile_page_addresses`, returned as an ``int64`` array."""
        self._check_tile(layout, row_start, row_count, col_start, col_count)
        element = layout.element_bytes
        stride_bytes = layout.row_stride_elements * element
        first = layout.base_vaddr + (row_start * layout.row_stride_elements + col_start) * element
        first_offset = first & (self.page_size - 1)
        key = (row_count, col_count * element, stride_bytes, first_offset)
        offsets = self._templates.get(key)
        if offsets is None:
            offsets = self._page_offsets(first_offset, row_count, col_count * element, stride_bytes)
            if len(self._templates) >= self.TEMPLATE_CACHE_ENTRIES:
                self._templates.clear()
            self._templates[key] = offsets
        return (first - first_offset) + offsets

    def tile_page_addresses(
        self,
        layout: MatrixLayout,
        row_start: int,
        row_count: int,
        col_start: int,
        col_count: int,
    ) -> List[int]:
        """Page-aligned virtual addresses touched by the tile, in access order.

        This reproduces the observation of Fig. 4: the first element located in
        each page determines the pages the DMA stream will need translated.
        """
        return self.tile_page_vaddrs(layout, row_start, row_count, col_start, col_count).tolist()

    def pages_per_tile(
        self, layout: MatrixLayout, row_count: int, col_count: int
    ) -> int:
        """Upper bound on distinct pages a tile of the given size touches."""
        segment_bytes = col_count * layout.element_bytes
        row_stride_bytes = layout.row_stride_elements * layout.element_bytes
        if row_stride_bytes <= self.page_size:
            return math.ceil(row_count * row_stride_bytes / self.page_size) + 1
        return row_count * (math.ceil(segment_bytes / self.page_size) + 1)


# --------------------------------------------------------------------------- functional mATLB
@dataclass
class MATLBStats:
    prewalks: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    page_faults: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MATLB:
    """The MMAE-local buffer of pre-walked translations."""

    def __init__(self, entries: int = 64, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if entries <= 0:
            raise ValueError("mATLB needs at least one entry")
        self.capacity = entries
        self.page_size = page_size
        self.predictor = PageTablePredictor(page_size)
        self.stats = MATLBStats()
        self._entries: "OrderedDict[int, int]" = OrderedDict()  # page vaddr -> page paddr

    def __len__(self) -> int:
        return len(self._entries)

    def prewalk_pages(self, mmu, asid: int, page_vaddrs: Iterable[int]) -> int:
        """Walk the given pages through the shared MMU and buffer the results.

        Returns the total walk cycles spent (the caller decides whether they are
        hidden).  Pages that fault are skipped and counted; the demand access
        will later raise the PAGE_FAULT exception through the normal path.
        """
        total_cycles = 0
        for vaddr in page_vaddrs:
            page_vaddr = align_down(vaddr, self.page_size)
            if page_vaddr in self._entries:
                continue
            try:
                result = mmu.prewalk(asid, page_vaddr)
            except PageFaultError:
                self.stats.page_faults += 1
                continue
            self.stats.prewalks += 1
            total_cycles += result.cycles
            self._insert(page_vaddr, align_down(result.paddr, self.page_size))
        return total_cycles

    def prewalk_tile(
        self,
        mmu,
        asid: int,
        layout: MatrixLayout,
        row_start: int,
        row_count: int,
        col_start: int,
        col_count: int,
    ) -> int:
        """Predict and pre-walk every page of one tile; returns the walk cycles."""
        pages = self.predictor.tile_page_addresses(layout, row_start, row_count, col_start, col_count)
        return self.prewalk_pages(mmu, asid, pages)

    def prewalk_pages_batch(self, mmu, asid: int, page_vaddrs: Sequence[int]) -> int:
        """Batched :meth:`prewalk_pages`: one MMU prewalk request stream per tile.

        Bit-identical to the scalar loop: the same pages reach the MMU in the
        same order (pages already buffered are skipped, pages made resident or
        evicted earlier in this very batch are accounted for), faulting pages
        are counted and skipped, and the same walk cycles are returned.  The
        buffer inserts resolve translations directly against the page table so
        the membership scan stays a tight dict loop; the MMU/TLB/walker charge
        for the misses happens in one batched prewalk afterwards, which cannot
        change the outcome because the MMU never touches the mATLB state.
        (Like the batched TLB path, this assumes the TLBs are consistent with
        the page table — i.e. no unmap without a flush, which no caller does.)
        """
        v = np.asarray(page_vaddrs, dtype=np.int64)
        if v.size == 0:
            return 0
        page_mask = self.page_size - 1
        pages = (v & ~page_mask).tolist()
        entries = self._entries
        capacity = self.capacity
        to_walk: List[int] = []
        page_table = None
        prewalks = faults = evictions = 0
        for page_vaddr in pages:
            if page_vaddr in entries:
                continue
            if page_table is None:
                # Deferred so an unregistered ASID raises exactly where the
                # scalar loop's first mmu.prewalk() call would.
                page_table = mmu.page_table(asid)
                pt_shift = page_table.page_size.bit_length() - 1
                pt_lookup = page_table.lookup
            pfn = pt_lookup(page_vaddr >> pt_shift)
            to_walk.append(page_vaddr)
            if pfn is None:
                faults += 1
                continue
            prewalks += 1
            if len(entries) >= capacity:
                entries.popitem(last=False)
                evictions += 1
            paddr = (pfn << pt_shift) | (page_vaddr & (page_table.page_size - 1))
            entries[page_vaddr] = paddr & ~page_mask
        self.stats.prewalks += prewalks
        self.stats.page_faults += faults
        self.stats.evictions += evictions
        if not to_walk:
            return 0
        return mmu.prewalk_batch(asid, to_walk).ok_cycles_total

    def buffer_matches(self, page_vaddrs: List[int]) -> bool:
        """True iff the buffer holds exactly these pages, in this LRU order.

        This is the steady-state of a tile sweep that re-streams the same
        operand panel (the Fig. 4 reuse pattern): when it holds, a prewalk
        skips every page without touching stats or LRU state, and a lookup
        stream over the pages hits every page while re-establishing the very
        same LRU order — so the whole prewalk+lookup pass reduces to a bulk
        hit-counter update.  Callers must pass page-aligned addresses in
        access order.
        """
        entries = self._entries
        return len(entries) == len(page_vaddrs) and list(entries.keys()) == page_vaddrs

    def lookup_batch(self, vaddrs: Sequence[int]) -> np.ndarray:
        """Batched :meth:`lookup`; misses yield ``-1``.

        Hit/miss counts and the LRU refresh order match the scalar per-address
        sequence exactly (lookups never change membership, so one pass over the
        batch suffices).
        """
        v = np.asarray(vaddrs, dtype=np.int64)
        page_mask = self.page_size - 1
        entries = self._entries
        get = entries.get
        move = entries.move_to_end
        paddrs: List[int] = []
        append = paddrs.append
        hits = 0
        for vaddr in v.tolist():
            page_vaddr = vaddr & ~page_mask
            paddr_page = get(page_vaddr)
            if paddr_page is None:
                append(-1)
            else:
                move(page_vaddr)
                hits += 1
                append(paddr_page + vaddr - page_vaddr)
        self.stats.hits += hits
        self.stats.misses += len(v) - hits
        return np.array(paddrs, dtype=np.int64)

    def lookup(self, vaddr: int) -> Optional[int]:
        """Return the translated physical address if the page is buffered."""
        page_vaddr = align_down(vaddr, self.page_size)
        paddr_page = self._entries.get(page_vaddr)
        if paddr_page is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(page_vaddr)
        self.stats.hits += 1
        return paddr_page + (vaddr - page_vaddr)

    def invalidate(self, vaddr: int) -> None:
        """Drop the entry for a page (the paper removes entries that stop matching)."""
        self._entries.pop(align_down(vaddr, self.page_size), None)

    def flush(self) -> None:
        self._entries.clear()

    def _insert(self, page_vaddr: int, page_paddr: int) -> None:
        if page_vaddr in self._entries:
            self._entries.move_to_end(page_vaddr)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[page_vaddr] = page_paddr


# ------------------------------------------------------------------- closed-form stall model
@dataclass(frozen=True)
class TranslationTimingParameters:
    """Calibration constants of the closed-form translation-stall model.

    ``first_touch_walk_cycles`` is the amortised cost of walking a page that
    has never been touched in this tile pass (consecutive pages share
    page-table-entry cache lines, so the leaf fetch is amortised over ~8
    pages); ``retouch_walk_cycles`` is the cost of re-walking a page whose
    translation fell out of the shared L2 TLB; ``predicted_exposed_fraction``
    is the small residual of walks the mATLB fails to hide (mispredicted or
    issued too late).  Cycles are in the MMAE clock domain.
    """

    first_touch_walk_cycles: float = 28.0
    retouch_walk_cycles: float = 85.0
    predicted_exposed_fraction: float = 0.03
    shared_tlb_entries: int = 1024


@dataclass(frozen=True)
class TranslationStallEstimate:
    """Outcome of the closed-form model for one GEMM."""

    unique_pages: int
    first_touch_walks: int
    retouch_walks: int
    stall_cycles: float
    prediction_enabled: bool

    @property
    def total_walks(self) -> int:
        return self.first_touch_walks + self.retouch_walks


def _unique_pages(rows: int, segment_bytes: int, row_stride_bytes: int, page_size: int) -> int:
    """Distinct pages touched by ``rows`` row segments of a row-major panel."""
    if rows <= 0:
        return 0
    if row_stride_bytes <= page_size:
        return max(1, math.ceil(rows * row_stride_bytes / page_size))
    return rows * max(1, math.ceil(segment_bytes / page_size))


def estimate_translation_stalls(
    shape: GEMMShape,
    level1: TileConfig,
    level2: TileConfig,
    page_size: int = DEFAULT_PAGE_SIZE,
    prediction_enabled: bool = True,
    params: TranslationTimingParameters = TranslationTimingParameters(),
) -> TranslationStallEstimate:
    """Estimate the DMA stall cycles caused by address translation for one GEMM.

    The derivation (DESIGN.md Section 5) follows the paper's Fig. 4 reasoning:
    when a matrix row spans more than one page, every tile row starts on a new
    page, so a first-level tile's A/B/C panels touch far more pages than the
    shared L2 TLB holds; every re-streaming of a panel (once per second-level
    column/row block) then re-walks the evicted entries.  With prediction the
    mATLB issues those walks ahead of the DMA streams and only a small residual
    remains exposed.
    """
    element = shape.precision.bytes_per_element
    tiling = TwoLevelTiling(shape, level1, level2)
    total_first = 0
    total_retouch = 0
    total_unique = 0
    for tile in tiling.level1_tiles():
        pages_a = _unique_pages(tile.rows, tile.depth * element, shape.k * element, page_size)
        pages_b = _unique_pages(tile.depth, tile.cols * element, shape.n * element, page_size)
        pages_c = _unique_pages(tile.rows, tile.cols * element, shape.n * element, page_size)
        unique = pages_a + pages_b + pages_c
        total_unique += unique
        thrash_fraction = max(0.0, (unique - params.shared_tlb_entries) / unique) if unique else 0.0
        touches_a = math.ceil(tile.cols / level2.cols)
        touches_b = math.ceil(tile.rows / level2.rows)
        retouch = (
            (touches_a - 1) * pages_a * thrash_fraction
            + (touches_b - 1) * pages_b * thrash_fraction
        )
        total_first += unique
        total_retouch += int(round(retouch))

    stall_cycles = (
        total_first * params.first_touch_walk_cycles
        + total_retouch * params.retouch_walk_cycles
    )
    if prediction_enabled:
        stall_cycles *= params.predicted_exposed_fraction
    return TranslationStallEstimate(
        unique_pages=total_unique,
        first_touch_walks=total_first,
        retouch_walks=total_retouch,
        stall_cycles=stall_cycles,
        prediction_enabled=prediction_enabled,
    )
