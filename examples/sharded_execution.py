#!/usr/bin/env python
"""Shard an LLM workload across mesh node groups and serve it under load.

Plans tensor- and pipeline-parallel executions of a decode-heavy LLaMA
workload at several degrees (the `repro.cli parallel` sweep as a library
call), then serves the same workload on node groups to show the
latency/throughput trade the sharding buys.  Command-line equivalents::

    python -m repro.cli parallel --workload llama-7b@decode --strategy auto --degree 1,2,4,8
    python -m repro.cli serve --nodes 8 --tenant-mix llm --parallel tp:4
"""

from repro.analysis import render_table
from repro.core import maco_default_config
from repro.core.maco import MACOSystem
from repro.parallel import plan_parallel
from repro.serve import ServeSimulator, llm_tenants, poisson_trace
from repro.workloads import workload_graph_by_name


def main() -> None:
    config = maco_default_config()
    graph = workload_graph_by_name("llama-7b@decode,layers=4,decode=32")

    rows = []
    for strategy in ("tp", "pp"):
        for degree in (1, 2, 4, 8):
            plan = plan_parallel(graph, config, f"{strategy}:{degree}")
            rows.append([
                strategy, degree,
                f"{plan.compute_seconds * 1e3:.1f}",
                f"{plan.comm_seconds * 1e3:.3f}",
                f"{plan.total_seconds * 1e3:.1f}",
                f"{plan.speedup:.2f}x",
                f"{plan.pipeline_interval_seconds * 1e3:.1f}",
            ])
    print(render_table(
        ["strategy", "degree", "compute (ms)", "comm (ms)", "latency (ms)",
         "speedup", "interval (ms)"],
        [[str(cell) for cell in row] for row in rows],
        title=f"Sharding plans - {graph.name}"))
    print()

    # Serve the same tenants unsharded vs on 4-node groups: groups shorten
    # each request but the fleet has fewer servers and pays NoC contention
    # between co-scheduled collectives.
    for parallelism in (None, "tp:4"):
        simulator = ServeSimulator(system=MACOSystem(maco_default_config(num_nodes=8)),
                                   parallelism=parallelism)
        specs = simulator.suggest_rates(llm_tenants(2), utilization=0.7)
        trace = poisson_trace(specs, duration_s=60.0, seed=7)
        report = simulator.run(trace)
        label = parallelism if parallelism else "unsharded"
        print(f"{label:10s} servers={len(report.nodes)} "
              f"p50={report.latency_p50_s * 1e3:.0f} ms "
              f"p99={report.latency_p99_s * 1e3:.0f} ms "
              f"throughput={report.throughput_rps:.2f} req/s")


if __name__ == "__main__":
    main()
