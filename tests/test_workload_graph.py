"""Tests for the phase-aware workload IR, the scenario catalog and per-phase sweeps."""


import pytest

from repro.core import DesignPoint, DesignSpaceExplorer, SweepRunner, maco_default_config
from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape
from repro.workloads import (
    LLAMA_CONFIGS,
    Phase,
    PhaseKind,
    WorkloadGraph,
    bert_workload,
    gpt3_workload,
    kv_cache_bytes,
    llm_workload_graph,
    moe_workload_graph,
    resnet50_graph,
    resnet50_workload,
    workload_by_name,
    workload_catalog,
    workload_graph_by_name,
    workload_names,
)


def small_phase(name="p", kind=PhaseKind.GENERIC, repeat=1, step=0, state=0):
    return Phase(name=name, kind=kind, shapes=(GEMMShape(8, 8, 8),),
                 non_gemm_flops=16, non_gemm_bytes=64, repeat=repeat, step=step,
                 state_bytes=state)


# ---------------------------------------------------------------------- the IR
class TestPhase:
    def test_metadata_per_execution_and_totals(self):
        shape = GEMMShape(64, 32, 16, Precision.FP32)
        phase = Phase(name="x", kind=PhaseKind.GENERIC, shapes=(shape,),
                      non_gemm_flops=100, non_gemm_bytes=50, repeat=4)
        assert phase.gemm_flops == shape.flops
        assert phase.footprint_bytes == shape.total_bytes
        assert phase.total_gemm_flops == 4 * shape.flops
        assert phase.total_flops == 4 * (shape.flops + 100)
        assert phase.total_bytes == 4 * (shape.total_bytes + 50)
        assert phase.reuse == pytest.approx(
            (shape.flops + 100) / (shape.total_bytes + 50))

    def test_validation(self):
        with pytest.raises(ValueError):
            Phase(name="empty", kind=PhaseKind.GENERIC, shapes=())
        with pytest.raises(ValueError):
            small_phase(repeat=0)
        with pytest.raises(ValueError):
            Phase(name="neg", kind=PhaseKind.GENERIC, shapes=(GEMMShape(1, 1, 1),),
                  non_gemm_flops=-1)

    def test_phase_dict_round_trip(self):
        phase = small_phase(kind=PhaseKind.DECODE, repeat=3, step=2, state=1024)
        assert Phase.from_dict(phase.to_dict()) == phase

    def test_malformed_phase_record_rejected(self):
        with pytest.raises(ValueError):
            Phase.from_dict({"name": "x"})


class TestWorkloadGraph:
    def test_flatten_expands_repeats_in_order(self):
        first = small_phase(name="a", repeat=2)
        second = Phase(name="b", kind=PhaseKind.GENERIC, shapes=(GEMMShape(4, 4, 4),),
                       non_gemm_flops=1, non_gemm_bytes=2)
        graph = WorkloadGraph(name="g", phases=[first, second])
        flat = graph.flatten()
        assert [shape.m for shape in flat] == [8, 8, 4]
        assert flat.non_gemm_flops == 2 * 16 + 1
        assert flat.non_gemm_bytes == 2 * 64 + 2
        assert flat.name == "g"

    def test_totals_match_flatten(self):
        graph = workload_graph_by_name("llama-7b@layers=2")
        flat = graph.flatten()
        assert graph.gemm_flops == flat.gemm_flops
        assert graph.non_gemm_flops == flat.non_gemm_flops
        assert graph.total_flops == flat.total_flops

    def test_from_workload_wraps_single_phase(self):
        flat = bert_workload(batch=1, seq_len=64)
        graph = WorkloadGraph.from_workload(flat)
        assert len(graph) == 1
        assert graph.flatten().shapes == flat.shapes

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            WorkloadGraph(name="hollow", phases=[])

    def test_json_round_trip_exact(self):
        for name in ("llama-7b@decode,batch=2", "moe-8x", "resnet50-conv", "bert"):
            graph = workload_graph_by_name(name)
            clone = WorkloadGraph.from_json(graph.to_json())
            assert clone == graph, name

    def test_json_is_stable_text(self):
        graph = workload_graph_by_name("gpt3")
        assert graph.to_json() == WorkloadGraph.from_json(graph.to_json()).to_json()


# -------------------------------------------------------------- export fidelity
class TestExportExplicitness:
    """Exports must be lossless regardless of folding: every phase record
    carries ``repeat``/``step``/``state_bytes`` explicitly even at their
    defaults, so a round trip cannot silently change the work a graph holds."""

    EXPLICIT_FIELDS = ("name", "kind", "shapes", "non_gemm_flops",
                       "non_gemm_bytes", "repeat", "step", "state_bytes")

    @pytest.mark.parametrize("name", [
        "resnet50",        # conv stages fold with repeat=1 (the default)
        "llama-7b@decode",  # decode blocks fold repeat = layers x tokens
        "bert",            # one phase, repeat = layers
    ])
    def test_every_phase_record_is_explicit(self, name):
        import json

        record = json.loads(workload_graph_by_name(name).to_json())
        for phase_record in record["phases"]:
            for field in self.EXPLICIT_FIELDS:
                assert field in phase_record, (name, phase_record["name"], field)

    def test_unfolded_default_repeat_survives_the_round_trip(self):
        phase = small_phase(repeat=1)
        clone = Phase.from_dict(phase.to_dict())
        assert clone == phase
        assert clone.repeat == 1 and "repeat" in phase.to_dict()

    def test_cli_export_round_trips_through_a_file(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "graph.json"
        assert main(["workloads", "export", "resnet50", "--output", str(target)]) == 0
        capsys.readouterr()
        clone = WorkloadGraph.from_json(target.read_text())
        original = workload_graph_by_name("resnet50")
        assert clone == original
        assert clone.flatten().shapes == original.flatten().shapes

    @pytest.mark.parametrize("name", sorted(workload_catalog()))
    def test_flatten_is_invariant_under_round_trip(self, name):
        graph = workload_graph_by_name(name)
        clone = WorkloadGraph.from_json(graph.to_json())
        assert clone.flatten().shapes == graph.flatten().shapes
        assert clone.total_flops == graph.total_flops
        assert clone.footprint_bytes == graph.footprint_bytes


# ------------------------------------------------------------------ generators
class TestLLMGraphs:
    def test_prefill_and_decode_phases_present(self):
        graph = llm_workload_graph("llama-7b", prompt_len=128, decode_tokens=32,
                                   decode_block=8, num_layers=2)
        kinds = [phase.kind for phase in graph]
        assert kinds[0] is PhaseKind.PREFILL
        assert all(kind is PhaseKind.DECODE for kind in kinds[1:])
        assert len(graph) == 1 + 32 // 8

    def test_kv_cache_grows_over_decode_steps(self):
        graph = llm_workload_graph("llama-7b", prompt_len=128, decode_tokens=32,
                                   decode_block=8, num_layers=2, phases=("decode",))
        states = [phase.state_bytes for phase in graph]
        assert states == sorted(states)
        assert states[0] < states[-1]
        steps = [phase.step for phase in graph]
        assert steps == sorted(steps)

    def test_decode_attention_reads_growing_kv(self):
        graph = llm_workload_graph("llama-7b", prompt_len=100, decode_tokens=4,
                                   decode_block=1, num_layers=1, phases=("decode",))
        assert len(graph) == 4
        config = LLAMA_CONFIGS["llama-7b"]
        for index, phase in enumerate(graph):
            logits = phase.shapes[3]
            assert logits.n == 100 + index + 1  # KV length at this step
            assert logits.m == config.heads  # batch=1, one token per step
            assert logits.k == config.hidden // config.heads

    def test_prefill_has_higher_reuse_than_decode(self):
        graph = llm_workload_graph("llama-7b", prompt_len=512, decode_tokens=16,
                                   decode_block=16, num_layers=2)
        prefill = graph.phases[0]
        decode = graph.phases[1]
        assert prefill.reuse > 10 * decode.reuse

    def test_kv_cache_bytes_formula(self):
        config = LLAMA_CONFIGS["llama-7b"]
        assert kv_cache_bytes(config, batch=2, kv_len=100, layers=4,
                              precision=Precision.FP16) == 2 * 2 * 100 * 4096 * 4 * 2

    def test_phase_selector_validation(self):
        with pytest.raises(ValueError):
            llm_workload_graph("llama-7b", phases=("prefill", "training"))
        with pytest.raises(ValueError):
            llm_workload_graph("llama-70b")
        with pytest.raises(ValueError):
            llm_workload_graph("llama-7b", decode_tokens=0, phases=("decode",))


class TestConvGraphs:
    def test_stage_phases_cover_all_layers(self):
        graph = resnet50_graph(batch=8)
        assert graph.phase_names == ["stem", "stage1", "stage2", "stage3", "stage4", "fc"]
        assert sum(len(phase.shapes) for phase in graph) == 54

    def test_flatten_matches_legacy_workload(self):
        flat = resnet50_graph(batch=8).flatten()
        legacy = resnet50_workload(batch=8)
        assert flat.shapes == legacy.shapes
        assert flat.non_gemm_flops == legacy.non_gemm_flops
        assert flat.non_gemm_bytes == legacy.non_gemm_bytes

    def test_conv_only_drops_classifier(self):
        conv = resnet50_graph(batch=8, conv_only=True)
        assert "fc" not in conv.phase_names
        assert all(phase.kind is PhaseKind.CONV for phase in conv)
        assert sum(len(phase.shapes) for phase in conv) == 53


class TestMoEGraphs:
    def test_expert_fan_out_shapes(self):
        graph = moe_workload_graph(experts=8, top_k=2, batch=2, seq_len=64, num_layers=2)
        moe_phase = next(phase for phase in graph if phase.kind is PhaseKind.MOE)
        # Router + (up, down) per expert.
        assert len(moe_phase.shapes) == 1 + 2 * 8
        router = moe_phase.shapes[0]
        assert router.n == 8 and router.m == 2 * 64

    def test_flops_scale_with_top_k_not_experts(self):
        base = moe_workload_graph(experts=8, top_k=2, batch=2, seq_len=64)
        wide = moe_workload_graph(experts=32, top_k=2, batch=2, seq_len=64)
        deep = moe_workload_graph(experts=8, top_k=4, batch=2, seq_len=64)
        assert wide.gemm_flops == pytest.approx(base.gemm_flops, rel=0.05)
        assert deep.gemm_flops > 1.3 * base.gemm_flops

    def test_expert_weights_reported_as_state(self):
        graph = moe_workload_graph(experts=8, top_k=2, hidden=256, intermediate=512)
        moe_phase = next(phase for phase in graph if phase.kind is PhaseKind.MOE)
        assert moe_phase.state_bytes == 8 * 2 * 256 * 512 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            moe_workload_graph(experts=0)
        with pytest.raises(ValueError):
            moe_workload_graph(experts=4, top_k=5)


# -------------------------------------------------------------------- registry
class TestRegistryCatalog:
    def test_suite_names_unchanged(self):
        assert workload_names() == ["bert", "gpt3", "resnet50"]

    def test_catalog_superset_of_suite(self):
        catalog = workload_catalog()
        assert set(workload_names()) <= set(catalog)
        assert {"llama-7b", "llama-13b", "moe-8x", "resnet50-conv"} <= set(catalog)

    def test_unknown_name_lists_sorted_options(self):
        with pytest.raises(ValueError) as excinfo:
            workload_by_name("alexnet")
        assert str(workload_catalog()) in str(excinfo.value)

    def test_unknown_parameter_lists_options(self):
        with pytest.raises(ValueError) as excinfo:
            workload_graph_by_name("bert@experts=4")
        assert "experts" in str(excinfo.value)
        assert "seq" in str(excinfo.value)

    def test_non_integer_parameter_rejected(self):
        with pytest.raises(ValueError):
            workload_graph_by_name("bert@batch=large")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ValueError):
            workload_graph_by_name("bert@batch=2,batch=4")

    def test_every_variant_builds_under_all_precisions(self):
        for name in workload_catalog():
            for precision in Precision:
                graph = workload_graph_by_name(name, precision)
                assert len(graph) >= 1, (name, precision)
                assert all(shape.precision is precision
                           for phase in graph for shape in phase.shapes), (name, precision)

    def test_precision_tag_overrides_argument(self):
        graph = workload_graph_by_name("bert@fp16", Precision.FP32)
        assert all(shape.precision is Precision.FP16
                   for phase in graph for shape in phase.shapes)

    def test_batch_override_scales_flops(self):
        base = workload_graph_by_name("resnet50-conv")
        bigger = workload_graph_by_name("resnet50-conv@batch=16")
        assert bigger.gemm_flops == pytest.approx(2 * base.gemm_flops, rel=1e-6)

    def test_phase_tags_select_subgraphs(self):
        prefill = workload_graph_by_name("llama-7b@prefill")
        decode = workload_graph_by_name("llama-7b@decode")
        both = workload_graph_by_name("llama-7b")
        assert all(phase.kind is PhaseKind.PREFILL for phase in prefill)
        assert all(phase.kind is PhaseKind.DECODE for phase in decode)
        assert len(both) == len(prefill) + len(decode)

    def test_legacy_flat_builders_unchanged(self):
        assert workload_by_name("bert").shapes == bert_workload().shapes
        assert workload_by_name("gpt3").shapes == gpt3_workload(
            "gpt3-2.7b", batch=4, seq_len=1024, num_layers=8).shapes

    def test_describe_reports_actual_build_parameters(self):
        from repro.workloads import describe_workload

        description = describe_workload("llama-7b@batch=2,layers=1")
        assert description["parameters"]["batch"] == 2
        assert description["parameters"]["layers"] == 1
        assert description["parameters"]["prompt"] == 512  # untouched default

    def test_registry_name_recorded_in_params(self):
        graph = workload_graph_by_name("LLaMA-7B@decode")
        assert graph.params["registry_name"] == "llama-7b@decode"


# ------------------------------------------------------------- per-phase sweeps
@pytest.fixture(scope="module")
def tiny_graph():
    return llm_workload_graph("llama-7b", batch=1, prompt_len=64, decode_tokens=8,
                              decode_block=4, num_layers=1)


class TestPhaseSweeps:
    def test_phase_seconds_sum_to_aggregate(self, tiny_graph):
        explorer = DesignSpaceExplorer(maco_default_config(num_nodes=2))
        point = DesignPoint(name="p", num_nodes=2)
        result = explorer.evaluate_graph(point, tiny_graph)
        assert sum(phase.seconds for phase in result.phases) == pytest.approx(
            result.aggregate.seconds, rel=1e-12)
        assert len(result.phases) == len(tiny_graph)
        assert result.point is point

    def test_aggregate_matches_flat_evaluation(self, tiny_graph):
        explorer = DesignSpaceExplorer(maco_default_config(num_nodes=2))
        point = DesignPoint(name="p", num_nodes=2)
        graph_result = explorer.evaluate_graph(point, tiny_graph)
        flat_result = explorer.evaluate(point, tiny_graph.flatten())
        assert graph_result.aggregate.seconds == pytest.approx(flat_result.seconds, rel=1e-9)
        assert graph_result.aggregate.gflops == pytest.approx(flat_result.gflops, rel=1e-9)

    def test_bottleneck_is_slowest_phase(self, tiny_graph):
        explorer = DesignSpaceExplorer(maco_default_config(num_nodes=2))
        result = explorer.evaluate_graph(DesignPoint(name="p", num_nodes=2), tiny_graph)
        assert result.bottleneck.seconds == max(phase.seconds for phase in result.phases)

    def test_explore_graph_sorts_by_objective(self, tiny_graph):
        explorer = DesignSpaceExplorer()
        points = [DesignPoint(name="small", sa_rows=2, sa_cols=2, num_nodes=2),
                  DesignPoint(name="big", sa_rows=8, sa_cols=8, num_nodes=2)]
        ranked = explorer.explore_graph(points, tiny_graph, objective="gflops")
        values = [entry.aggregate.gflops for entry in ranked]
        assert values == sorted(values, reverse=True)

    def test_parallel_graph_sweep_bit_identical(self, tiny_graph):
        points = [DesignPoint(name=f"n{count}", num_nodes=count) for count in (1, 2, 4)]
        serial = SweepRunner(jobs=1).evaluate_points_on_graph(points, tiny_graph)
        parallel = SweepRunner(jobs=2).evaluate_points_on_graph(points, tiny_graph)
        for one, two in zip(serial, parallel):
            assert one.aggregate.seconds == two.aggregate.seconds
            assert [phase.seconds for phase in one.phases] == \
                   [phase.seconds for phase in two.phases]
