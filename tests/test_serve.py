"""Tests for the trace-driven multi-tenant serving simulator (repro.serve)."""

import json

import pytest

from repro.analysis import percentile
from repro.core import MACOSystem, maco_default_config
from repro.gemm import Precision
from repro.serve import (
    FCFSScheduler,
    Request,
    RoundRobinScheduler,
    ServeSimulator,
    SJFScheduler,
    TenantSpec,
    bursty_trace,
    default_tenants,
    poisson_trace,
    replay_trace,
    scheduler_by_name,
)


def make_request(request_id, tenant="t0", workload="resnet50", arrival=0.0):
    return Request(request_id=request_id, tenant=tenant, workload=workload, arrival_s=arrival)


@pytest.fixture
def simulator():
    return ServeSimulator(config=maco_default_config(num_nodes=4), scheduler="fcfs")


def quick_trace(seed=7, tenants=3, rate=2.0, duration=20.0):
    specs = [spec.with_rate(rate) for spec in default_tenants(tenants)]
    return poisson_trace(specs, duration, seed=seed)


# ------------------------------------------------------------------ percentiles
class TestPercentile:
    def test_nearest_rank_values(self):
        data = list(range(1, 101))
        assert percentile(data, 50) == 50
        assert percentile(data, 95) == 95
        assert percentile(data, 99) == 99
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 100

    def test_monotone_in_q(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
        values = [percentile(data, q) for q in (0, 25, 50, 75, 90, 99, 100)]
        assert values == sorted(values)

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


# ------------------------------------------------------------------ trace layer
class TestTraces:
    def test_poisson_trace_is_deterministic(self):
        first = quick_trace(seed=11)
        second = quick_trace(seed=11)
        assert first.to_records() == second.to_records()

    def test_different_seeds_differ(self):
        assert quick_trace(seed=1).to_records() != quick_trace(seed=2).to_records()

    def test_arrivals_sorted_with_stable_ids(self):
        trace = quick_trace()
        arrivals = [request.arrival_s for request in trace]
        assert arrivals == sorted(arrivals)
        assert [request.request_id for request in trace] == list(range(len(trace)))

    def test_poisson_rate_roughly_respected(self):
        specs = [TenantSpec(name="a", rate_rps=50.0, mix=(("bert", 1.0),))]
        trace = poisson_trace(specs, duration_s=40.0, seed=3)
        assert 50.0 * 40.0 * 0.8 < len(trace) < 50.0 * 40.0 * 1.2

    def test_bursty_preserves_mean_rate_but_clusters(self):
        specs = [TenantSpec(name="a", rate_rps=50.0, mix=(("bert", 1.0),))]
        smooth = poisson_trace(specs, duration_s=40.0, seed=5)
        bursty = bursty_trace(specs, duration_s=40.0, seed=5, burst_factor=8.0,
                              burst_fraction=0.2, cycle_s=0.5)
        assert len(bursty) == pytest.approx(len(smooth), rel=0.25)
        in_burst = sum(1 for r in bursty if (r.arrival_s % 0.5) / 0.5 < 0.2)
        assert in_burst / len(bursty) > 0.8  # arrivals concentrate in the bursts

    def test_default_tenants_rotate_dominant_workload(self):
        specs = default_tenants(3)
        dominants = [max(spec.mix, key=lambda item: item[1])[0] for spec in specs]
        assert len(set(dominants)) == 3

    def test_replay_round_trip(self, tmp_path):
        trace = quick_trace()
        path = tmp_path / "trace.json"
        trace.save(path)
        replayed = replay_trace(path)
        assert replayed.to_records() == trace.to_records()

    def test_replay_rejects_malformed_records(self):
        with pytest.raises(ValueError):
            replay_trace([{"tenant": "a"}])

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(name="a", rate_rps=0.0)
        with pytest.raises(ValueError):
            TenantSpec(name="a", mix=())
        with pytest.raises(ValueError):
            poisson_trace(default_tenants(1), duration_s=0.0)
        with pytest.raises(ValueError):
            default_tenants(0)


# ------------------------------------------------------------------- schedulers
class TestSchedulers:
    def test_fcfs_pops_in_arrival_order(self):
        scheduler = FCFSScheduler()
        for request_id, arrival in [(0, 3.0), (1, 1.0), (2, 2.0)]:
            scheduler.push(make_request(request_id, arrival=arrival))
        assert [scheduler.pop().request_id for _ in range(3)] == [1, 2, 0]

    def test_sjf_pops_shortest_estimate_first(self):
        estimates = {"gpt3": 30.0, "bert": 10.0, "resnet50": 1.0}
        scheduler = SJFScheduler(lambda request: estimates[request.workload])
        for request_id, workload in [(0, "gpt3"), (1, "resnet50"), (2, "bert")]:
            scheduler.push(make_request(request_id, workload=workload))
        assert [scheduler.pop().workload for _ in range(3)] == ["resnet50", "bert", "gpt3"]

    def test_round_robin_alternates_tenants(self):
        scheduler = RoundRobinScheduler()
        for request_id, tenant in [(0, "a"), (1, "a"), (2, "a"), (3, "b"), (4, "b")]:
            scheduler.push(make_request(request_id, tenant=tenant, arrival=float(request_id)))
        order = [scheduler.pop().tenant for _ in range(5)]
        assert order == ["a", "b", "a", "b", "a"]

    def test_pop_empty_raises(self):
        for scheduler in (FCFSScheduler(), RoundRobinScheduler()):
            with pytest.raises(IndexError):
                scheduler.pop()

    def test_factory(self):
        assert scheduler_by_name("fcfs").name == "fcfs"
        assert scheduler_by_name("rr").name == "rr"
        assert scheduler_by_name("sjf", estimator=lambda r: 1.0).name == "sjf"
        with pytest.raises(ValueError):
            scheduler_by_name("sjf")
        with pytest.raises(ValueError):
            scheduler_by_name("lifo")


# ------------------------------------------------------------------- simulator
class TestSimulator:
    def test_identical_seed_gives_bit_identical_reports(self, simulator):
        trace = quick_trace(seed=7)
        first = simulator.run(trace)
        second = ServeSimulator(config=maco_default_config(num_nodes=4)).run(quick_trace(seed=7))
        assert first.to_json() == second.to_json()

    @pytest.mark.parametrize("scheduler", ["fcfs", "sjf", "rr"])
    def test_jobs_setting_does_not_change_report(self, scheduler):
        trace = quick_trace(seed=9)
        serial = ServeSimulator(config=maco_default_config(num_nodes=4),
                                scheduler=scheduler, jobs=1).run(trace)
        parallel = ServeSimulator(config=maco_default_config(num_nodes=4),
                                  scheduler=scheduler, jobs=2).run(trace)
        assert serial.to_json() == parallel.to_json()

    def test_percentile_ordering_regression(self, simulator):
        report = simulator.run(quick_trace(seed=3))
        assert report.latency_p99_s >= report.latency_p95_s >= report.latency_p50_s
        for tenant in report.tenants:
            assert tenant.latency_p99_s >= tenant.latency_p50_s

    def test_tenant_throughputs_sum_to_fleet(self, simulator):
        report = simulator.run(quick_trace(seed=3))
        assert sum(t.throughput_rps for t in report.tenants) == pytest.approx(
            report.throughput_rps, rel=1e-12)
        assert sum(t.requests for t in report.tenants) == report.total_requests

    def test_all_requests_complete_and_nodes_busy(self, simulator):
        trace = quick_trace(seed=4)
        report = simulator.run(trace)
        assert report.total_requests == len(trace)
        assert sum(node.completed for node in report.nodes) == len(trace)
        assert 0.0 < report.mean_utilization <= 1.0
        for node in report.nodes:
            assert node.utilization <= 1.0 + 1e-12

    def test_single_tenant_has_no_context_switches(self):
        specs = [TenantSpec(name="only", rate_rps=3.0, mix=(("resnet50", 1.0),))]
        trace = poisson_trace(specs, duration_s=10.0, seed=1)
        report = ServeSimulator(config=maco_default_config(num_nodes=2)).run(trace)
        assert report.context_switch_s == 0.0
        assert all(node.tenant_switches == 0 for node in report.nodes)

    def test_multi_tenant_interleaving_charges_switches(self, simulator):
        report = simulator.run(quick_trace(seed=5))
        assert sum(node.tenant_switches for node in report.nodes) > 0
        assert report.context_switch_s > 0.0

    def test_latency_never_below_service_time(self, simulator):
        specs = [TenantSpec(name="only", rate_rps=1.0, mix=(("resnet50", 1.0),))]
        trace = poisson_trace(specs, duration_s=10.0, seed=2)
        report = simulator.run(trace)
        service = simulator.service_seconds("resnet50", Precision.FP32)
        # finish - arrival can round down by one ulp relative to the raw estimate
        assert report.latency_p50_s >= service * (1.0 - 1e-12)

    def test_sjf_favours_short_jobs_over_fcfs(self):
        # Saturate a single node with a mixed queue: SJF must finish the short
        # resnet50 requests first, cutting their latency versus FCFS.
        specs = [
            TenantSpec(name="short", rate_rps=2.0, mix=(("resnet50", 1.0),)),
            TenantSpec(name="long", rate_rps=2.0, mix=(("gpt3", 1.0),)),
        ]
        trace = poisson_trace(specs, duration_s=10.0, seed=6)
        fcfs = ServeSimulator(config=maco_default_config(num_nodes=1), scheduler="fcfs")
        sjf = ServeSimulator(config=maco_default_config(num_nodes=1), scheduler="sjf")
        fcfs_report, sjf_report = fcfs.run(trace), sjf.run(trace)
        short_fcfs = next(t for t in fcfs_report.tenants if t.name == "short")
        short_sjf = next(t for t in sjf_report.tenants if t.name == "short")
        assert short_sjf.latency_mean_s < short_fcfs.latency_mean_s

    def test_report_json_round_trips(self, simulator):
        report = simulator.run(quick_trace(seed=8))
        parsed = json.loads(report.to_json())
        assert parsed["total_requests"] == report.total_requests
        assert len(parsed["tenants"]) == len(report.tenants)
        assert parsed == report.to_dict()

    def test_suggest_rates_targets_utilization(self):
        simulator = ServeSimulator(config=maco_default_config(num_nodes=4))
        specs = simulator.suggest_rates(default_tenants(3), utilization=0.7)
        trace = poisson_trace(specs, duration_s=60.0 / sum(s.rate_rps for s in specs) * 10, seed=1)
        report = simulator.run(trace)
        # Short traces drift from the asymptotic target; just require sanity.
        assert 0.3 < report.mean_utilization <= 1.0

    def test_functional_smoke_verifies_gemms(self):
        simulator = ServeSimulator(config=maco_default_config(num_nodes=2))
        trace = quick_trace(seed=1, duration=5.0)
        simulator.run(trace)  # leaves tenant ASIDs current on the nodes
        assert simulator.functional_smoke(trace, size=32, max_requests=3) == 3

    def test_rejects_system_and_config_together(self):
        config = maco_default_config(num_nodes=2)
        with pytest.raises(ValueError):
            ServeSimulator(system=MACOSystem(config), config=config)

    def test_unsorted_trace_simulates_like_sorted(self):
        """A hand-built out-of-order RequestTrace must not corrupt dispatch."""
        from repro.serve import RequestTrace

        requests = [make_request(0, arrival=5.0), make_request(1, arrival=1.0),
                    make_request(2, arrival=3.0)]
        shuffled = RequestTrace(name="t", requests=requests, duration_s=6.0)
        ordered = RequestTrace(name="t", requests=sorted(
            requests, key=lambda r: r.arrival_s), duration_s=6.0)
        config = maco_default_config(num_nodes=1)
        first = ServeSimulator(config=config).run(shuffled)
        second = ServeSimulator(config=config).run(ordered)
        assert first.to_json() == second.to_json()

    def test_disabling_mapping_increases_service_time(self):
        """estimate_service_seconds must mirror run_workload's L3-share collapse."""
        from repro.serve import estimate_service_seconds

        mapped = maco_default_config(num_nodes=4)
        unmapped = mapped.with_mapping(False)
        with_mapping = estimate_service_seconds(mapped, "bert", Precision.FP32, 4)
        without = estimate_service_seconds(unmapped, "bert", Precision.FP32, 4)
        assert without > with_mapping

    def test_queue_depth_mean_counts_in_service_waiters_exactly(self):
        """N same-instant requests on one node: time-averaged depth = (N-1)/2."""
        from repro.serve import RequestTrace

        n = 6
        trace = RequestTrace(
            name="burst", duration_s=1.0,
            requests=[make_request(i, arrival=0.0) for i in range(n)])
        report = ServeSimulator(config=maco_default_config(num_nodes=1)).run(trace)
        assert report.queue_depth_mean == pytest.approx((n - 1) / 2)
        assert report.queue_depth_max == n

    def test_suggest_rates_identical_across_jobs(self):
        serial = ServeSimulator(config=maco_default_config(num_nodes=4), jobs=1)
        pooled = ServeSimulator(config=maco_default_config(num_nodes=4), jobs=2)
        rates_serial = [s.rate_rps for s in serial.suggest_rates(default_tenants(3))]
        rates_pooled = [s.rate_rps for s in pooled.suggest_rates(default_tenants(3))]
        assert rates_serial == rates_pooled
        # suggest_rates must leave the estimates memoized for run() to reuse.
        assert len(pooled._services) == 3


# ---------------------------------------------------------- phase-aware serving
class TestLLMServing:
    """LLM prefill/decode tenants through the phase-aware service estimator."""

    VARIANT = "llama-7b@layers=2,prompt=128,decode=16,block=8"

    def llm_trace(self, seed=7, rate=1.0, duration=12.0):
        from repro.serve import llm_tenants

        specs = llm_tenants(2, rate_rps=rate, variant=self.VARIANT)
        return poisson_trace(specs, duration, seed=seed)

    def test_llm_tenants_alternate_prefill_and_decode(self):
        from repro.serve import llm_tenants

        specs = llm_tenants(4)
        dominants = [max(spec.mix, key=lambda item: item[1])[0] for spec in specs]
        assert dominants == ["llama-7b@prefill", "llama-7b@decode"] * 2

    def test_llm_tenants_reject_variant_with_phase_tag(self):
        """The split is llm_tenants' job; a phase-tagged variant fails early."""
        from repro.serve import llm_tenants

        for variant in ("llama-7b@decode", "llama-7b@layers=2,prefill",
                        "llama-7b@phases=decode"):
            with pytest.raises(ValueError, match="already selects phases"):
                llm_tenants(2, variant=variant)
        # Parameter-only specs still work.
        specs = llm_tenants(2, variant="llama-7b@layers=2")
        assert specs[0].mix[0][0] == "llama-7b@layers=2,prefill"

    def test_phase_estimates_sum_to_service_time(self):
        from repro.serve import estimate_phase_service_seconds, estimate_service_seconds

        config = maco_default_config(num_nodes=2)
        phases = estimate_phase_service_seconds(config, self.VARIANT, Precision.FP32, 2)
        total = estimate_service_seconds(config, self.VARIANT, Precision.FP32, 2)
        assert len(phases) == 1 + 2  # prefill + two decode blocks
        assert sum(seconds for _, seconds in phases) == pytest.approx(total, rel=1e-12)
        assert all(seconds > 0 for _, seconds in phases)

    def test_decode_costs_more_than_prefill_per_flop(self):
        """Decode streams the full weights per token: far lower useful GFLOPS."""
        from repro.workloads import workload_graph_by_name

        simulator = ServeSimulator(config=maco_default_config(num_nodes=2))
        base = self.VARIANT.partition("@")[0]
        spec = self.VARIANT.partition("@")[2]
        prefill_name = f"{base}@{spec},prefill"
        decode_name = f"{base}@{spec},decode"
        ratios = {}
        for name in (prefill_name, decode_name):
            seconds = simulator.service_seconds(name, Precision.FP32)
            flops = workload_graph_by_name(name).total_flops
            ratios[name] = flops / seconds
        assert ratios[prefill_name] > 2 * ratios[decode_name]

    def test_llm_mix_reports_are_deterministic(self):
        trace = self.llm_trace(seed=11)
        first = ServeSimulator(config=maco_default_config(num_nodes=2)).run(trace)
        second = ServeSimulator(config=maco_default_config(num_nodes=2)).run(
            self.llm_trace(seed=11))
        assert first.to_json() == second.to_json()

    def test_llm_mix_identical_across_jobs(self):
        trace = self.llm_trace(seed=5)
        serial = ServeSimulator(config=maco_default_config(num_nodes=2), jobs=1).run(trace)
        pooled = ServeSimulator(config=maco_default_config(num_nodes=2), jobs=2).run(trace)
        assert serial.to_json() == pooled.to_json()

    def test_report_distinguishes_prefill_from_decode_tenants(self):
        report = ServeSimulator(config=maco_default_config(num_nodes=2)).run(
            self.llm_trace(seed=3, duration=20.0))
        by_name = {tenant.name: tenant for tenant in report.tenants}
        assert set(by_name) == {"tenant0-prefill", "tenant1-decode"}
        # The decode-heavy tenant pays for streaming the weights per token.
        assert by_name["tenant1-decode"].latency_p50_s > \
            by_name["tenant0-prefill"].latency_p50_s

    def test_phase_profile_breakdown(self):
        simulator = ServeSimulator(config=maco_default_config(num_nodes=2))
        profile = simulator.phase_profile(self.VARIANT)
        names = [name for name, _ in profile]
        assert names[0].startswith("prefill")
        assert all(name.startswith("decode") for name in names[1:])
