"""Clock and clock-domain helpers.

MACO has three clock domains (paper, Section V.A): the CPU cores run at
2.2 GHz, the MMAEs at 2.5 GHz and the NoC at 2.0 GHz.  Timing results produced
by one domain frequently have to be compared with, or added to, results from
another domain, so every domain can convert cycles to seconds and seconds back
to cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Clock:
    """A cycle counter tied to a fixed frequency.

    Parameters
    ----------
    frequency_hz:
        Clock frequency in Hertz.  Must be positive.
    name:
        Optional human readable name used in error messages and reports.
    """

    frequency_hz: float
    name: str = "clock"
    cycle: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError(f"{self.name}: frequency must be positive, got {self.frequency_hz}")

    @property
    def period_s(self) -> float:
        """Duration of one cycle in seconds."""
        return 1.0 / self.frequency_hz

    def advance(self, cycles: int = 1) -> int:
        """Advance the clock by ``cycles`` and return the new cycle count."""
        if cycles < 0:
            raise ValueError(f"{self.name}: cannot advance by a negative cycle count ({cycles})")
        self.cycle += int(cycles)
        return self.cycle

    def reset(self) -> None:
        """Reset the cycle counter to zero."""
        self.cycle = 0

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count in this domain to wall-clock seconds."""
        return cycles / self.frequency_hz

    def seconds_to_cycles(self, seconds: float) -> int:
        """Convert seconds into a (rounded-up) number of cycles in this domain."""
        if seconds < 0:
            raise ValueError(f"{self.name}: negative duration {seconds}")
        return int(math.ceil(seconds * self.frequency_hz))

    @property
    def elapsed_s(self) -> float:
        """Wall-clock time elapsed since the last reset."""
        return self.cycles_to_seconds(self.cycle)


@dataclass(frozen=True)
class CycleDomain:
    """Immutable description of a clock domain (name + frequency).

    Used by configuration objects; a live :class:`Clock` can be created from it
    with :meth:`make_clock`.
    """

    name: str
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError(f"{self.name}: frequency must be positive")

    @property
    def frequency_ghz(self) -> float:
        return self.frequency_hz / 1e9

    def make_clock(self) -> Clock:
        return Clock(frequency_hz=self.frequency_hz, name=self.name)

    def convert_cycles(self, cycles: float, target: "CycleDomain") -> float:
        """Express ``cycles`` of this domain as (fractional) cycles of ``target``."""
        return cycles * target.frequency_hz / self.frequency_hz
