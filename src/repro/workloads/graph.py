"""Phase-aware workload IR: networks as ordered streams of GEMM phases.

The Fig. 8 evaluation treats a network as one flat GEMM list, which is fine
for a single inference pass but loses exactly the structure that serving and
design-space studies care about: an LLM's prefill and decode phases have
radically different GEMM shapes and reuse, a ResNet's conv stages shrink
spatially while growing in channels, and a mixture-of-experts FFN routes a
token subset through each expert.  The :class:`WorkloadGraph` IR keeps that
structure: a named, ordered list of :class:`Phase` objects, each carrying its
GEMM shapes plus the metadata the consumers need —

* **footprint** — unique operand bytes streamed per execution of the phase;
* **reuse** — FLOPs per byte (arithmetic intensity), the roofline axis that
  separates compute-bound prefill from bandwidth-bound decode;
* **growth over steps** — ``step`` orders decode phases and ``state_bytes``
  records the resident state (e.g. the KV cache) at that step, so consumers
  can see the footprint grow token by token.

``flatten()`` lowers a graph back to the legacy
:class:`~repro.gemm.workloads.GEMMWorkload` for consumers that do not care
about phases (Fig. 8, the baselines); ``to_json``/``from_json`` round-trip
the IR for export and replay.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape, GEMMWorkload

__all__ = ["PhaseKind", "Phase", "WorkloadGraph"]


class PhaseKind(enum.Enum):
    """What a phase computes, at the granularity the timing consumers use."""

    PREFILL = "prefill"  # full-sequence transformer pass (prompt processing)
    DECODE = "decode"  # per-token autoregressive step against a KV cache
    CONV = "conv"  # im2col-lowered convolution stage
    LINEAR = "linear"  # fully-connected layers
    MOE = "moe"  # routed mixture-of-experts FFN
    GENERIC = "generic"  # anything else (legacy flat workloads)


@dataclass(frozen=True)
class Phase:
    """One ordered stage of a workload: a GEMM stream plus its metadata.

    ``shapes`` and the non-GEMM tail describe a *single* execution of the
    phase; ``repeat`` folds consecutive identical executions (e.g. the
    per-layer GEMM set of a transformer, or the per-token GEMMs of a decode
    block) so a 32-layer network stays a handful of phases.  ``step`` orders
    phases that model progress through time (decode blocks), and
    ``state_bytes`` is the resident state the phase needs beyond its
    streaming operands — the KV cache for decode, the expert weights for MoE.
    ``tokens`` counts the output tokens the phase emits (the tokens of a
    decode block); the serving simulator divides decode time by it to report
    time-per-output-token, and it stays 0 for phases that emit none.
    """

    name: str
    kind: PhaseKind
    shapes: Tuple[GEMMShape, ...]
    non_gemm_flops: int = 0
    non_gemm_bytes: int = 0
    repeat: int = 1
    step: int = 0
    state_bytes: int = 0
    tokens: int = 0
    weight_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.shapes:
            raise ValueError(f"phase {self.name!r} has no GEMMs")
        if self.repeat <= 0:
            raise ValueError(f"phase {self.name!r}: repeat must be positive")
        if self.non_gemm_flops < 0 or self.non_gemm_bytes < 0 or self.state_bytes < 0:
            raise ValueError(f"phase {self.name!r}: work and state cannot be negative")
        if self.step < 0 or self.tokens < 0:
            raise ValueError(f"phase {self.name!r}: step and tokens cannot be negative")
        if self.weight_bytes is not None and self.weight_bytes < 0:
            raise ValueError(f"phase {self.name!r}: weight bytes cannot be negative")

    # ------------------------------------------------------------- per-execution
    @property
    def gemm_flops(self) -> int:
        """GEMM FLOPs of one execution of the phase."""
        return sum(shape.flops for shape in self.shapes)

    @property
    def footprint_bytes(self) -> int:
        """Unique operand bytes one execution streams (A + B + C of every GEMM)."""
        return sum(shape.total_bytes for shape in self.shapes)

    @property
    def reuse(self) -> float:
        """FLOPs per operand byte — the roofline arithmetic intensity."""
        total_bytes = self.footprint_bytes + self.non_gemm_bytes
        if total_bytes == 0:
            return 0.0
        return (self.gemm_flops + self.non_gemm_flops) / total_bytes

    @property
    def resident_weight_bytes(self) -> int:
        """Model-weight bytes this phase needs resident while it executes.

        Generators that know their model set ``weight_bytes`` explicitly (the
        LLM phases all carry the full decoder stack, since prefill and decode
        share it).  Otherwise the weights are derived from the B operands —
        the stationary ``k x n`` matrix of each GEMM — summed over the
        ``repeat`` folded executions.  Derived decode phases report 0: their
        ``repeat`` folds layers x tokens, which would multiply-count the
        layer weights they share with prefill.
        """
        if self.weight_bytes is not None:
            return self.weight_bytes
        if self.kind is PhaseKind.DECODE:
            return 0
        per_execution = sum(
            shape.k * shape.n * shape.precision.bytes_per_element for shape in self.shapes
        )
        return per_execution * self.repeat

    # ------------------------------------------------------------------- totals
    @property
    def total_gemm_flops(self) -> int:
        """GEMM FLOPs across all ``repeat`` executions."""
        return self.gemm_flops * self.repeat

    @property
    def total_flops(self) -> int:
        """GEMM plus non-GEMM FLOPs across all ``repeat`` executions."""
        return (self.gemm_flops + self.non_gemm_flops) * self.repeat

    @property
    def total_bytes(self) -> int:
        """Operand bytes streamed across all ``repeat`` executions."""
        return (self.footprint_bytes + self.non_gemm_bytes) * self.repeat

    # --------------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """The phase as plain JSON-able data (see :meth:`from_dict`).

        Every field is emitted explicitly — including ``repeat``, ``step``
        and ``state_bytes`` when they hold their defaults — so exports are
        lossless and self-describing regardless of how the phase folds its
        repeats (``tests/test_workload_graph.py`` pins this down).
        """
        return {
            "name": self.name,
            "kind": self.kind.value,
            "shapes": [
                {
                    "m": shape.m,
                    "n": shape.n,
                    "k": shape.k,
                    "precision": shape.precision.value,
                }
                for shape in self.shapes
            ],
            "non_gemm_flops": self.non_gemm_flops,
            "non_gemm_bytes": self.non_gemm_bytes,
            "repeat": self.repeat,
            "step": self.step,
            "state_bytes": self.state_bytes,
            "tokens": self.tokens,
            "weight_bytes": self.weight_bytes,
        }

    @classmethod
    def from_dict(cls, record: Mapping) -> "Phase":
        """Rebuild a phase from :meth:`to_dict` output (exact round trip)."""
        try:
            shapes = tuple(
                GEMMShape(
                    int(entry["m"]),
                    int(entry["n"]),
                    int(entry["k"]),
                    Precision.from_string(entry.get("precision", "fp32")),
                )
                for entry in record["shapes"]
            )
            return cls(
                name=str(record["name"]),
                kind=PhaseKind(record.get("kind", "generic")),
                shapes=shapes,
                non_gemm_flops=int(record.get("non_gemm_flops", 0)),
                non_gemm_bytes=int(record.get("non_gemm_bytes", 0)),
                repeat=int(record.get("repeat", 1)),
                step=int(record.get("step", 0)),
                state_bytes=int(record.get("state_bytes", 0)),
                tokens=int(record.get("tokens", 0)),
                weight_bytes=(
                    None
                    if record.get("weight_bytes") is None
                    else int(record["weight_bytes"])
                ),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed phase record: {record!r}") from error


@dataclass
class WorkloadGraph:
    """A network lowered to an ordered list of GEMM phases.

    ``params`` records how the graph was generated (variant, batch, sequence
    lengths, ...) so exports are self-describing; it does not affect timing.
    """

    name: str
    phases: List[Phase] = field(default_factory=list)
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError(f"workload graph {self.name!r} has no phases")

    def __iter__(self) -> Iterator[Phase]:
        return iter(self.phases)

    def __len__(self) -> int:
        return len(self.phases)

    # ------------------------------------------------------------------- totals
    @property
    def gemm_flops(self) -> int:
        """Total GEMM FLOPs across every phase execution."""
        return sum(phase.total_gemm_flops for phase in self.phases)

    @property
    def non_gemm_flops(self) -> int:
        """Total non-GEMM (element-wise tail) FLOPs across every phase."""
        return sum(phase.non_gemm_flops * phase.repeat for phase in self.phases)

    @property
    def total_flops(self) -> int:
        """GEMM plus non-GEMM FLOPs over the whole graph."""
        return sum(phase.total_flops for phase in self.phases)

    @property
    def footprint_bytes(self) -> int:
        """Operand bytes streamed over the whole graph."""
        return sum(phase.total_bytes for phase in self.phases)

    @property
    def peak_state_bytes(self) -> int:
        """Largest resident state any phase needs (e.g. the final KV cache)."""
        return max(phase.state_bytes for phase in self.phases)

    @property
    def weight_bytes(self) -> int:
        """Resident model-weight bytes the graph needs on one server.

        Phases with an explicit :attr:`Phase.weight_bytes` declare the *total*
        shared weights of their model (prefill and decode carry the same
        stack), so they contribute a maximum; phases that derive their weights
        from B operands each own distinct layers (conv stages, MLP blocks),
        so they accumulate.  The resident requirement is whichever is larger.
        """
        explicit = max(
            (phase.weight_bytes for phase in self.phases if phase.weight_bytes is not None),
            default=0,
        )
        derived = sum(
            phase.resident_weight_bytes
            for phase in self.phases
            if phase.weight_bytes is None
        )
        return max(explicit, derived)

    @property
    def total_tokens(self) -> int:
        """Output tokens the graph emits (0 for graphs without decode phases)."""
        return sum(phase.tokens for phase in self.phases)

    @property
    def phase_names(self) -> List[str]:
        """The phase names, in execution order."""
        return [phase.name for phase in self.phases]

    def state_growth(self) -> List[Tuple[str, int]]:
        """``(phase name, state_bytes)`` in phase order — how state grows."""
        return [(phase.name, phase.state_bytes) for phase in self.phases]

    # ------------------------------------------------------------------ lowering
    def flatten(self, name: Optional[str] = None) -> GEMMWorkload:
        """Lower to the legacy flat :class:`GEMMWorkload` (phases expanded in order)."""
        shapes: List[GEMMShape] = []
        non_gemm_flops = 0
        non_gemm_bytes = 0
        for phase in self.phases:
            for _ in range(phase.repeat):
                shapes.extend(phase.shapes)
            non_gemm_flops += phase.non_gemm_flops * phase.repeat
            non_gemm_bytes += phase.non_gemm_bytes * phase.repeat
        return GEMMWorkload(
            name=name if name is not None else self.name,
            shapes=shapes,
            non_gemm_flops=non_gemm_flops,
            non_gemm_bytes=non_gemm_bytes,
        )

    @classmethod
    def from_workload(
        cls,
        workload: GEMMWorkload,
        kind: PhaseKind = PhaseKind.GENERIC,
        params: Optional[Mapping[str, object]] = None,
    ) -> "WorkloadGraph":
        """Wrap a legacy flat workload as a single-phase graph."""
        phase = Phase(
            name=workload.name,
            kind=kind,
            shapes=tuple(workload.shapes),
            non_gemm_flops=workload.non_gemm_flops,
            non_gemm_bytes=workload.non_gemm_bytes,
        )
        return cls(name=workload.name, phases=[phase], params=dict(params or {}))

    # --------------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """The graph as plain JSON-able data: name, params, explicit phases."""
        return {
            "name": self.name,
            "params": dict(self.params),
            "phases": [phase.to_dict() for phase in self.phases],
        }

    def to_json(self, indent: int = 2) -> str:
        """Stable JSON text (sorted keys, so identical graphs compare equal)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, record: Mapping) -> "WorkloadGraph":
        """Rebuild a graph from :meth:`to_dict` output (exact round trip)."""
        try:
            phases = [Phase.from_dict(entry) for entry in record["phases"]]
            return cls(
                name=str(record["name"]),
                phases=phases,
                params=dict(record.get("params", {})),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed workload graph record: {record!r}") from error

    @classmethod
    def from_json(cls, text: str) -> "WorkloadGraph":
        """Parse :meth:`to_json` output (``repro.cli workloads export``) back."""
        return cls.from_dict(json.loads(text))

    # ---------------------------------------------------------------- reporting
    def summary_rows(self) -> List[List[object]]:
        """Per-phase description rows for the CLI ``workloads describe`` table."""
        rows: List[List[object]] = []
        for phase in self.phases:
            rows.append(
                [
                    phase.name,
                    phase.kind.value,
                    phase.repeat,
                    len(phase.shapes),
                    phase.total_gemm_flops / 1e9,
                    phase.footprint_bytes / 1e6,
                    phase.state_bytes / 1e6,
                    phase.reuse,
                ]
            )
        return rows
