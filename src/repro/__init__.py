"""Reproduction of MACO: GEMM acceleration on a loosely-coupled multi-core processor.

The package is organised as a set of substrates (simulation kernel, memory
hierarchy, network-on-chip, ISA, CPU core, MMAE accelerator, GEMM algorithms,
deep-learning workloads, baselines) topped by :mod:`repro.core`, which
assembles them into the MACO system described in the paper.

Quickstart::

    from repro.core import MACOSystem, maco_default_config
    from repro.gemm import GEMMShape, Precision

    system = MACOSystem(maco_default_config(num_nodes=4))
    result = system.run_gemm(GEMMShape(2048, 2048, 2048, Precision.FP64))
    print(result.gflops, result.efficiency)
"""

from repro.version import __version__

__all__ = ["__version__"]
