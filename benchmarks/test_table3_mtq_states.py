"""Table III and Fig. 3 — MTQ entry fields and the entry state machine.

Regenerates the field table and drives an MTQ entry through every transition
of Fig. 3 (task running, completion with and without exceptions, release by
MA_STATE, reuse by another process, MA_CLEAR after an exception).
"""

from repro.analysis import render_table
from repro.cpu.exceptions import ExceptionType
from repro.cpu.mtq import MTQState, MasterTaskQueue, StatusWord


def build_table3() -> str:
    rows = [
        ["Valid", "Indicate whether the entry is allocated."],
        ["Done", "Indicate whether the task is completed."],
        ["ASID", "Process identifier."],
        ["exception_en", "Indicate exception occurs during MMAE's task execution."],
        ["exception_type", "Specific type of an exception event."],
    ]
    return render_table(["Field", "Description"], rows, title="Table III - details of an MTQ entry")


def drive_fig3_state_machine() -> list:
    """Execute the Fig. 3 transition sequence; returns the observed state trace."""
    mtq = MasterTaskQueue(num_entries=4)
    trace = []

    # (1) MA_CFG by process #00: task is performing.
    maid = mtq.allocate(asid=0)
    trace.append(mtq.state_of(maid))
    # (2)/(3) Task completes without exceptions, MA_STATE by the owner releases it.
    mtq.mark_done(maid)
    trace.append(mtq.state_of(maid))
    mtq.query_and_release(maid, asid=0)
    trace.append(mtq.state_of(maid))
    # Entry reused by process #01; process #00 sees the ASID mismatch.
    reused = mtq.allocate(asid=1)
    assert reused == maid
    status = StatusWord.unpack(mtq.query(maid))
    assert status.asid == 1
    trace.append(mtq.state_of(maid))
    # (4) Task completes with an exception; MA_CLEAR is required.
    mtq.mark_done(maid, ExceptionType.PAGE_FAULT)
    trace.append(mtq.state_of(maid))
    mtq.clear(maid)
    trace.append(mtq.state_of(maid))
    return trace


def test_table3_and_fig3_mtq(benchmark):
    def regenerate():
        trace = drive_fig3_state_machine()
        return build_table3(), trace

    table, trace = benchmark(regenerate)
    print("\n" + table)
    print("Fig. 3 state trace:", " -> ".join(state.value for state in trace))
    assert trace == [
        MTQState.RUNNING,
        MTQState.DONE,
        MTQState.FREE,
        MTQState.RUNNING,
        MTQState.DONE_EXCEPTION,
        MTQState.FREE,
    ]
    assert "exception_type" in table
