"""The memory-management unit shared between the CPU core and the MMAE.

The MMAE has no MMU of its own: it shares the CPU core's L2 ("shared") TLB via
a customised interface, and the mATLB sends its predictive page-table-walk
requests through this MMU (paper Sections III.A and IV.A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.mem.address import DEFAULT_PAGE_SIZE
from repro.mem.page_table import PageFaultError, PageTable, PageTableWalker
from repro.mem.tlb import BatchTranslationResult, TLBHierarchy, TranslationResult


@dataclass
class MMUStats:
    translations: int = 0
    itlb_accesses: int = 0
    dtlb_accesses: int = 0
    walks: int = 0
    walk_cycles: int = 0
    prewalk_requests: int = 0


class MMU:
    """ITLB + DTLB + shared L2 TLB + page-table walker (Table I geometry)."""

    def __init__(
        self,
        itlb_entries: int = 48,
        dtlb_entries: int = 48,
        l2_entries: int = 1024,
        page_size: int = DEFAULT_PAGE_SIZE,
        walker: Optional[PageTableWalker] = None,
    ) -> None:
        self.page_size = page_size
        self.walker = walker if walker is not None else PageTableWalker()
        # The instruction and data L1 TLBs share the unified L2 TLB, which the
        # model approximates with two hierarchies sharing one walker; the L2
        # capacity is what matters for the MMAE's streaming accesses.
        self.itlb = TLBHierarchy(
            l1_entries=itlb_entries, l2_entries=l2_entries, page_size=page_size,
            walker=self.walker, name="itlb",
        )
        self.dtlb = TLBHierarchy(
            l1_entries=dtlb_entries, l2_entries=l2_entries, page_size=page_size,
            walker=self.walker, name="dtlb",
        )
        self.stats = MMUStats()
        self._page_tables: Dict[int, PageTable] = {}

    # ------------------------------------------------------------------ contexts
    def register_page_table(self, page_table: PageTable) -> None:
        """Make an address space translatable through this MMU."""
        self._page_tables[page_table.asid] = page_table

    def page_table(self, asid: int) -> PageTable:
        if asid not in self._page_tables:
            raise KeyError(f"no page table registered for ASID {asid}")
        return self._page_tables[asid]

    def registered_asids(self) -> List[int]:
        return list(self._page_tables)

    # --------------------------------------------------------------- translation
    def translate_data(self, asid: int, vaddr: int) -> TranslationResult:
        """Translate a data access (CPU load/store or MMAE DMA)."""
        self.stats.translations += 1
        self.stats.dtlb_accesses += 1
        result = self.dtlb.translate(self.page_table(asid), vaddr)
        if result.level == "walk":
            self.stats.walks += 1
            self.stats.walk_cycles += result.cycles
        return result

    def translate_instruction(self, asid: int, vaddr: int) -> TranslationResult:
        """Translate an instruction fetch."""
        self.stats.translations += 1
        self.stats.itlb_accesses += 1
        result = self.itlb.translate(self.page_table(asid), vaddr)
        if result.level == "walk":
            self.stats.walks += 1
            self.stats.walk_cycles += result.cycles
        return result

    def prewalk(self, asid: int, vaddr: int) -> TranslationResult:
        """Perform a predictive walk on behalf of the mATLB.

        The result is installed in the shared TLBs so the later demand access
        hits; the caller decides whether the walk cycles are hidden.
        """
        self.stats.prewalk_requests += 1
        result = self.dtlb.prewalk(self.page_table(asid), vaddr)
        if result.level == "walk":
            self.stats.walks += 1
            self.stats.walk_cycles += result.cycles
        return result

    def translate_data_batch(self, asid: int, vaddrs: Sequence[int]) -> BatchTranslationResult:
        """Translate a batch of data accesses; exact batch twin of :meth:`translate_data`.

        A :class:`PageFaultError` propagates at the first unmapped address in
        order, after the MMU stats have been updated for the prefix the scalar
        loop would have processed (the faulting access itself counts as a
        translation, as it does in the scalar path).
        """
        page_table = self.page_table(asid)
        try:
            result = self.dtlb.translate_batch(page_table, vaddrs, on_fault="raise")
        except PageFaultError as error:
            processed = getattr(error, "batch_processed", 0)
            self.stats.translations += processed
            self.stats.dtlb_accesses += processed
            self.stats.walks += getattr(error, "batch_walks", 0)
            self.stats.walk_cycles += getattr(error, "batch_walk_cycles", 0)
            raise
        self.stats.translations += len(result)
        self.stats.dtlb_accesses += len(result)
        self.stats.walks += result.walk_count
        self.stats.walk_cycles += result.walk_cycles_total
        return result

    def prewalk_batch(self, asid: int, vaddrs: Sequence[int]) -> BatchTranslationResult:
        """Batched mATLB prewalk; exact batch twin of per-address :meth:`prewalk` calls.

        Unmapped pages are marked ``LEVEL_FAULT`` and skipped instead of
        raising, replicating a scalar caller that catches the fault per page
        and carries on (the faulting request still counts as a prewalk request
        and as an L1/L2 TLB miss, exactly as in the scalar path).
        """
        page_table = self.page_table(asid)
        result = self.dtlb.translate_batch(page_table, vaddrs, on_fault="skip")
        self.stats.prewalk_requests += len(result)
        self.stats.walks += result.walk_count
        self.stats.walk_cycles += result.walk_cycles_total
        return result

    def mapped_mask(self, asid: int, vaddrs: Sequence[int]) -> np.ndarray:
        """Vectorized mapping check against one address space's page table."""
        return self.page_table(asid).mapped_mask(np.asarray(vaddrs, dtype=np.int64))

    def flush_asid(self, asid: int) -> None:
        self.itlb.flush(asid)
        self.dtlb.flush(asid)

    @property
    def data_tlb_hit_rate(self) -> float:
        accesses = self.dtlb.l1.stats.accesses
        if not accesses:
            return 0.0
        # A hit at either level counts; only walks are misses of the hierarchy.
        hierarchy_misses = self.dtlb.l2.stats.misses
        return 1.0 - hierarchy_misses / accesses
