"""The Slave Task Queue (STQ) inside each MMAE.

The STQ mirrors the CPU-side MTQ: it receives the parameters of a GEMM (or
data-migration) task identified by the same MAID, parses and buffers them in
local registers, monitors the MMAE components executing the task, and responds
with the final status to the corresponding MTQ entry (paper Section III.C).
Buffered tasks execute automatically once the active entry completes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.cpu.exceptions import ExceptionType


class STQEntryState(enum.Enum):
    WAITING = "waiting"      # parameters buffered, not yet dispatched
    RUNNING = "running"      # currently executing on the MMAE
    DONE = "done"            # completed without exception
    ERROR = "error"          # terminated by an exception


@dataclass
class STQEntry:
    """One buffered task: MAID + ASID + parsed descriptor + execution state."""

    maid: int
    asid: int
    kind: str                 # "gemm", "move", "init" or "stash"
    descriptor: Any
    state: STQEntryState = STQEntryState.WAITING
    exception: ExceptionType = ExceptionType.NONE
    cycles: float = 0.0

    def mark_running(self) -> None:
        if self.state is not STQEntryState.WAITING:
            raise RuntimeError(f"STQ entry {self.maid} cannot start from state {self.state}")
        self.state = STQEntryState.RUNNING

    def mark_done(self, cycles: float) -> None:
        self.state = STQEntryState.DONE
        self.cycles = cycles

    def mark_error(self, exception: ExceptionType, cycles: float = 0.0) -> None:
        self.state = STQEntryState.ERROR
        self.exception = exception
        self.cycles = cycles


class SlaveTaskQueue:
    """FIFO of buffered tasks with completion notification back to the MTQ."""

    def __init__(self, capacity: int = 8, name: str = "stq") -> None:
        if capacity <= 0:
            raise ValueError("STQ capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: List[STQEntry] = []
        self._completion_callback: Optional[Callable[[int, ExceptionType], None]] = None
        self.tasks_received = 0
        self.tasks_completed = 0
        self.tasks_failed = 0

    # ------------------------------------------------------------------ wiring
    def on_completion(self, callback: Callable[[int, ExceptionType], None]) -> None:
        """Register the response path back to the MTQ (called with maid, exception)."""
        self._completion_callback = callback

    # ------------------------------------------------------------------- intake
    def receive(self, maid: int, asid: int, kind: str, descriptor: Any) -> STQEntry:
        """Buffer a task's parameters (the MMAE side of MA_CFG and friends)."""
        if self.occupancy >= self.capacity:
            raise RuntimeError(f"{self.name}: queue full ({self.capacity} entries)")
        if kind not in ("gemm", "move", "init", "stash"):
            raise ValueError(f"unknown task kind {kind!r}")
        entry = STQEntry(maid=maid, asid=asid, kind=kind, descriptor=descriptor)
        self._entries.append(entry)
        self.tasks_received += 1
        return entry

    @property
    def occupancy(self) -> int:
        return sum(
            1 for entry in self._entries
            if entry.state in (STQEntryState.WAITING, STQEntryState.RUNNING)
        )

    def pending(self) -> List[STQEntry]:
        return [entry for entry in self._entries if entry.state is STQEntryState.WAITING]

    def next_task(self) -> Optional[STQEntry]:
        """The oldest buffered task, if any (tasks auto-execute in arrival order)."""
        for entry in self._entries:
            if entry.state is STQEntryState.WAITING:
                return entry
        return None

    def entry_for(self, maid: int) -> Optional[STQEntry]:
        """Most recent entry with the given MAID (entries are retired lazily)."""
        for entry in reversed(self._entries):
            if entry.maid == maid:
                return entry
        return None

    # --------------------------------------------------------------- completion
    def complete(self, entry: STQEntry, cycles: float) -> None:
        """Mark an entry done and notify the MTQ."""
        entry.mark_done(cycles)
        self.tasks_completed += 1
        if self._completion_callback is not None:
            self._completion_callback(entry.maid, ExceptionType.NONE)

    def fail(self, entry: STQEntry, exception: ExceptionType, cycles: float = 0.0) -> None:
        """Mark an entry failed and notify the MTQ of the exception."""
        entry.mark_error(exception, cycles)
        self.tasks_failed += 1
        if self._completion_callback is not None:
            self._completion_callback(entry.maid, exception)

    def retire_finished(self) -> int:
        """Drop completed/failed entries; returns how many were removed."""
        before = len(self._entries)
        self._entries = [
            entry for entry in self._entries
            if entry.state in (STQEntryState.WAITING, STQEntryState.RUNNING)
        ]
        return before - len(self._entries)
