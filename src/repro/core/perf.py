"""System-level performance model: per-node memory environments and GEMM timing.

This module glues the substrates together for the evaluation sweeps: it
derives the :class:`~repro.mmae.dataflow.MemoryEnvironment` one compute node
sees when ``active_nodes`` nodes are streaming simultaneously (L3 capacity
share, DRAM bandwidth share, queueing-inflated round-trip latencies, NoC link
contention) and wraps :func:`~repro.mmae.dataflow.estimate_gemm_timing` with
the system configuration.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import astuple, dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.core.config import MACOConfig
from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape
from repro.mem.dram import DRAMModel
from repro.mmae.dataflow import (
    GEMMTimingBreakdown,
    MemoryEnvironment,
    estimate_gemm_timing,
)
from repro.noc.contention import NocContentionModel


def memory_environment(config: MACOConfig, active_nodes: int) -> MemoryEnvironment:
    """The memory system as seen by one node when ``active_nodes`` nodes are busy.

    * **L3 share** — the distributed system cache is shared, so each active
      node can keep roughly ``total / active_nodes`` bytes resident.
    * **DRAM share** — the DDR controllers' effective bandwidth (which erodes
      slightly as stream count grows) divided among the active nodes.
    * **Round-trip latencies** — the base L3/DRAM latencies plus a queueing
      term that grows with the number of active nodes contending at the CCMs
      and memory controllers; the latency-limited DMA engines turn this
      directly into lower sustained bandwidth.
    """
    if not 1 <= active_nodes <= config.num_nodes:
        raise ValueError(f"active_nodes must be in 1..{config.num_nodes}, got {active_nodes}")
    memory = config.memory
    dram = DRAMModel(config=memory.dram)
    dram_share = dram.effective_bandwidth(active_nodes) / active_nodes
    queue_ns = memory.queue_ns_per_active_node * (active_nodes - 1)
    return MemoryEnvironment(
        l3_share_bytes=memory.l3_total_bytes / active_nodes,
        dram_bandwidth_share_bytes_per_s=dram_share,
        noc_node_bandwidth_bytes_per_s=config.noc.node_bandwidth_bytes_per_s,
        l3_round_trip_ns=memory.l3_round_trip_ns + queue_ns,
        dram_round_trip_ns=memory.dram_round_trip_ns + queue_ns,
    )


def unmapped_memory_environment(env: MemoryEnvironment) -> MemoryEnvironment:
    """Degrade ``env`` for runs without the stash/lock mapping scheme.

    Without stash/lock the working set is not pinned: demand traffic competes
    with every other node's streams, so the effective resident L3 share
    collapses to a small fraction (floor 64 KiB) and more of the re-read
    traffic spills to DRAM.  Shared by :meth:`MACOSystem.run_workload` and the
    serving simulator so the degradation model stays calibrated in one place.
    """
    from dataclasses import replace

    return replace(env, l3_share_bytes=max(env.l3_share_bytes * 0.125, 64 * 1024))


def estimate_node_gemm(
    config: MACOConfig,
    shape: GEMMShape,
    active_nodes: int = 1,
    prediction_enabled: Optional[bool] = None,
    env: Optional[MemoryEnvironment] = None,
) -> GEMMTimingBreakdown:
    """Timing of one GEMM executed by one MMAE under the given system load."""
    if prediction_enabled is None:
        prediction_enabled = config.prediction_enabled
    if env is None:
        env = memory_environment(config, active_nodes)
    return estimate_gemm_timing(
        shape,
        level1=config.level1_tile,
        level2=config.level2_tile,
        params=config.mmae.timing_parameters(),
        env=env,
        prediction_enabled=prediction_enabled,
        page_size=config.memory.page_size,
    )


@lru_cache(maxsize=1024)
def config_fingerprint(config: MACOConfig) -> str:
    """Stable fingerprint of a configuration, used to key the timing cache.

    ``MACOConfig`` and its nested configs are frozen dataclasses, so their
    ``repr`` enumerates every field deterministically; hashing it gives a
    compact key that changes whenever any architectural knob changes.
    """
    return hashlib.sha1(repr(config).encode()).hexdigest()


class TimingCache:
    """Memoises :func:`estimate_node_gemm` results across sweeps and workloads.

    The cycle-approximate timing of a GEMM is a pure function of
    ``(configuration, shape, active_nodes, prediction, memory environment)``;
    sweeps and DL workloads evaluate the same shapes over and over (every
    column partition repeats at most two distinct sub-shapes per layer, BERT
    repeats the same four GEMMs per encoder block, figure regenerations rerun
    whole sweeps), so memoising the breakdown skips re-walking the tile
    schedule.  Entries are evicted FIFO past ``max_entries``.  Hits return
    the stored instance directly; that is safe because
    :class:`~repro.mmae.dataflow.GEMMTimingBreakdown` is frozen.
    """

    def __init__(self, max_entries: int = 65536) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._store: "OrderedDict[Tuple, GEMMTimingBreakdown]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of estimates served from the cache since the last clear."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(
        config: MACOConfig,
        shape: GEMMShape,
        active_nodes: int,
        prediction_enabled: bool,
        env: Optional[MemoryEnvironment],
    ) -> Tuple:
        env_key = None if env is None else astuple(env)
        return (config_fingerprint(config), shape, active_nodes, prediction_enabled, env_key)

    def estimate(
        self,
        config: MACOConfig,
        shape: GEMMShape,
        active_nodes: int = 1,
        prediction_enabled: Optional[bool] = None,
        env: Optional[MemoryEnvironment] = None,
    ) -> GEMMTimingBreakdown:
        """Cached :func:`estimate_node_gemm` (bit-identical to the direct call)."""
        if prediction_enabled is None:
            prediction_enabled = config.prediction_enabled
        key = self._key(config, shape, active_nodes, prediction_enabled, env)
        cached = self._store.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        result = estimate_node_gemm(
            config, shape, active_nodes=active_nodes,
            prediction_enabled=prediction_enabled, env=env,
        )
        if len(self._store) >= self.max_entries:
            self._store.popitem(last=False)
        self._store[key] = result
        return result


#: Process-wide default cache shared by the system model, the baselines and the
#: sweeps.  :class:`repro.core.batch.SweepRunner` seeds its pool workers with a
#: snapshot of the runner's cache, so warm entries carry into parallel sweeps
#: (entries computed inside workers die with the pool).
DEFAULT_TIMING_CACHE = TimingCache()


def estimate_node_gemm_cached(
    config: MACOConfig,
    shape: GEMMShape,
    active_nodes: int = 1,
    prediction_enabled: Optional[bool] = None,
    env: Optional[MemoryEnvironment] = None,
    cache: Optional[TimingCache] = None,
) -> GEMMTimingBreakdown:
    """:func:`estimate_node_gemm` through a memoizing cache (default: process-wide)."""
    cache = DEFAULT_TIMING_CACHE if cache is None else cache
    return cache.estimate(
        config, shape, active_nodes=active_nodes,
        prediction_enabled=prediction_enabled, env=env,
    )


def node_peak_gflops(config: MACOConfig, precision: Precision) -> float:
    """Theoretical peak of a single MMAE for a precision."""
    return {
        Precision.FP64: config.mmae.peak_gflops_fp64,
        Precision.FP32: config.mmae.peak_gflops_fp32,
        Precision.FP16: config.mmae.peak_gflops_fp16,
    }[precision]


@dataclass
class EfficiencyPoint:
    """One point of an efficiency sweep (Figs. 6 and 7)."""

    matrix_size: int
    active_nodes: int
    prediction_enabled: bool
    efficiency: float
    gflops: float
    seconds: float


def sweep_prediction(
    config: MACOConfig,
    sizes: List[int],
    precision: Precision = Precision.FP64,
    jobs: Optional[int] = None,
    runner: Optional["object"] = None,
) -> List[EfficiencyPoint]:
    """The Fig. 6 sweep: single node, with and without predictive translation.

    ``jobs``/``runner`` fan the per-size evaluations out over a
    :class:`repro.core.batch.SweepRunner`; the default stays serial (with the
    process-wide timing cache) and is bit-identical to the parallel path.
    """
    from repro.core.batch import SweepRunner

    if runner is None:
        runner = SweepRunner(jobs=jobs if jobs is not None else 1)
    return runner.sweep_prediction(config, sizes, precision=precision)


def sweep_scalability(
    config: MACOConfig,
    sizes: List[int],
    node_counts: List[int],
    precision: Precision = Precision.FP64,
    jobs: Optional[int] = None,
    runner: Optional["object"] = None,
) -> List[EfficiencyPoint]:
    """The Fig. 7 sweep: independent GEMMs on 1..16 nodes, per-node efficiency.

    Like :func:`sweep_prediction`, the sweep runs through a
    :class:`repro.core.batch.SweepRunner` (serial unless ``jobs``/``runner``
    says otherwise) so every ``(size, nodes)`` evaluation is cached and can be
    fanned out over worker processes.
    """
    from repro.core.batch import SweepRunner

    if runner is None:
        runner = SweepRunner(jobs=jobs if jobs is not None else 1)
    return runner.sweep_scalability(config, sizes, node_counts, precision=precision)


def noc_contention_model(config: MACOConfig) -> NocContentionModel:
    """The transaction-independent NoC contention model for this configuration."""
    return NocContentionModel(config=config.noc, dram=DRAMModel(config=config.memory.dram))
