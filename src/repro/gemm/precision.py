"""Floating-point precisions supported by the MACO MMAE.

The MMAE's systolic array natively computes FP64 MACs; the paper extends the
classical dataflow with SIMD-like compute modes that pack two FP32 or four
FP16 operations into each PE lane (Fig. 2(c)/(d)).  The :class:`Precision`
enum captures the element width, the NumPy dtype used by the functional
models, and the SIMD packing factor of each mode.
"""

from __future__ import annotations

import enum

import numpy as np


class Precision(enum.Enum):
    """Element precision of a GEMM operand."""

    FP64 = "fp64"
    FP32 = "fp32"
    FP16 = "fp16"

    @property
    def bytes_per_element(self) -> int:
        """Storage size of one element in bytes."""
        return {Precision.FP64: 8, Precision.FP32: 4, Precision.FP16: 2}[self]

    @property
    def simd_ways(self) -> int:
        """Number of MAC lanes one PE provides in this mode (Fig. 2(b)-(d))."""
        return {Precision.FP64: 1, Precision.FP32: 2, Precision.FP16: 4}[self]

    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype used by the functional models."""
        return {
            Precision.FP64: np.dtype(np.float64),
            Precision.FP32: np.dtype(np.float32),
            Precision.FP16: np.dtype(np.float16),
        }[self]

    @property
    def accumulate_dtype(self) -> np.dtype:
        """Accumulator dtype: FP16 inputs accumulate in FP32, others in kind."""
        if self is Precision.FP16:
            return np.dtype(np.float32)
        return self.dtype

    @property
    def matmul_tolerance(self) -> float:
        """Relative tolerance used when comparing against a NumPy reference."""
        return {Precision.FP64: 1e-12, Precision.FP32: 1e-5, Precision.FP16: 2e-2}[self]

    @classmethod
    def from_string(cls, name: str) -> "Precision":
        """Parse a precision from names like ``"fp32"``, ``"FP32"`` or ``"float32"``."""
        normalized = name.strip().lower().replace("float", "fp")
        for member in cls:
            if member.value == normalized:
                return member
        raise ValueError(f"unknown precision {name!r}; expected one of fp64/fp32/fp16")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value.upper()
