"""Shared parity-test factories (imported by conftest.py and test modules).

These are the consolidated versions of what used to be ad-hoc module-level
helpers duplicated across ``test_serve_vectorized.py``, ``test_parallel.py``
and ``test_vectorized_parity.py`` — and the same constructions the
conformance fuzz layer (:mod:`repro.conformance.fuzz`) samples from.  They
live in their own module (not ``conftest.py``) because the benchmarks
directory has a ``conftest.py`` of its own, which makes a bare
``import conftest`` ambiguous in a whole-repo pytest run.
"""

from __future__ import annotations

import numpy as np

from repro.core import maco_default_config


def make_mixed_tenants(count=3, rate=4.0):
    """Tenants exercising every scheduler-relevant field: distinct rates and
    mixes, priority tiers for the priority policy, and TTFT/TPOT deadlines
    for the SLO policy's EDF ordering."""
    from repro.serve import default_tenants

    specs = [spec.with_rate(rate) for spec in default_tenants(count)]
    return [
        spec.with_slo(ttft_slo_s=0.5 + 0.25 * index,
                      tpot_slo_s=0.05,
                      priority=index % 2)
        for index, spec in enumerate(specs)
    ]


def make_serve_trace(seed=7, duration=20.0, count=3, rate=4.0):
    """The canonical mixed-tenant Poisson trace the parity suites replay."""
    from repro.serve import poisson_trace

    return poisson_trace(make_mixed_tenants(count, rate), duration_s=duration, seed=seed)


def make_serve_simulator(engine, scheduler="fcfs", batching="request", **kwargs):
    """A 4-node serve simulator; ``batching='step'`` selects the degenerate
    step mode (``max_batch=1``, no preemption) that routes through the
    request-level engine — the mode where the scalar/array choice applies."""
    from repro.serve import ServeSimulator

    defaults = dict(config=maco_default_config(num_nodes=4))
    if batching == "step":
        defaults.update(batching="step", max_batch=1, preemption=False)
    defaults.update(kwargs)
    return ServeSimulator(scheduler=scheduler, engine=engine, **defaults)


def run_emulator_pair(rows, cols, tr, seed):
    """Run one random block through the scalar and vectorized systolic
    emulators and return ``(scalar_result, vector_result)`` for bit-identity
    assertions."""
    from repro.mmae.systolic_array import (
        SystolicArrayEmulator,
        VectorizedSystolicArrayEmulator,
    )

    gen = np.random.default_rng(seed)
    a_block = gen.standard_normal((tr, rows))
    b_block = gen.standard_normal((rows, cols))
    scalar = SystolicArrayEmulator(rows=rows, cols=cols).run_block(a_block, b_block)
    vector = VectorizedSystolicArrayEmulator(rows=rows, cols=cols).run_block(a_block, b_block)
    return scalar, vector
