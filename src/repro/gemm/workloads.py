"""GEMM workload descriptions and generators.

The paper evaluates MACO on two kinds of GEMM workloads:

* synthetic square GEMMs of sizes 256 .. 9216 taken from an HPL-style
  benchmark package (Fig. 6 and Fig. 7), and
* the GEMM streams of ResNet-50, BERT and GPT-3 inference (Fig. 8), which are
  produced by :mod:`repro.workloads` on top of the :class:`GEMMShape` type
  defined here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.gemm.precision import Precision

#: Matrix sizes swept by Fig. 6 of the paper (single-node address translation study).
FIG6_MATRIX_SIZES: tuple[int, ...] = (256, 512, 1024, 2048, 4096, 9216)

#: Matrix sizes swept by Fig. 7 of the paper (multi-node scalability study).
FIG7_MATRIX_SIZES: tuple[int, ...] = (
    256, 512, 1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192, 9216,
)


@dataclass(frozen=True)
class GEMMShape:
    """Shape of a single GEMM: C[M,N] += A[M,K] @ B[K,N].

    The shape is the unit of work the MACO runtime schedules; everything the
    performance models need (FLOP count, operand footprints) derives from it.
    """

    m: int
    n: int
    k: int
    precision: Precision = Precision.FP64

    def __post_init__(self) -> None:
        for dim_name in ("m", "n", "k"):
            value = getattr(self, dim_name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"GEMM dimension {dim_name} must be a positive integer, got {value!r}")

    @property
    def flops(self) -> int:
        """Floating point operations (multiply + add counted separately)."""
        return 2 * self.m * self.n * self.k

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations."""
        return self.m * self.n * self.k

    @property
    def bytes_a(self) -> int:
        return self.m * self.k * self.precision.bytes_per_element

    @property
    def bytes_b(self) -> int:
        return self.k * self.n * self.precision.bytes_per_element

    @property
    def bytes_c(self) -> int:
        return self.m * self.n * self.precision.bytes_per_element

    @property
    def total_bytes(self) -> int:
        """Total unique operand bytes (A + B + C)."""
        return self.bytes_a + self.bytes_b + self.bytes_c

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per unique byte touched, the classic roofline metric."""
        return self.flops / self.total_bytes

    def with_precision(self, precision: Precision) -> "GEMMShape":
        return GEMMShape(self.m, self.n, self.k, precision)

    def split_rows(self, parts: int) -> List["GEMMShape"]:
        """Split along M into ``parts`` nearly equal shapes (used by multi-node mapping)."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        if parts > self.m:
            raise ValueError(f"cannot split M={self.m} into {parts} parts")
        base, extra = divmod(self.m, parts)
        shapes = []
        for index in range(parts):
            rows = base + (1 if index < extra else 0)
            shapes.append(GEMMShape(rows, self.n, self.k, self.precision))
        return shapes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"GEMM(M={self.m}, N={self.n}, K={self.k}, {self.precision})"


@dataclass
class GEMMWorkload:
    """A named collection of GEMM shapes plus optional non-GEMM work.

    ``non_gemm_flops`` and ``non_gemm_bytes`` describe the element-wise tail
    operators (activation, normalisation, softmax) that follow the GEMMs in a
    GEMM+ workload (paper Section IV.B); they are executed by the CPU cores.
    """

    name: str
    shapes: List[GEMMShape] = field(default_factory=list)
    non_gemm_flops: int = 0
    non_gemm_bytes: int = 0

    def __post_init__(self) -> None:
        if self.non_gemm_flops < 0 or self.non_gemm_bytes < 0:
            raise ValueError("non-GEMM work cannot be negative")

    def __iter__(self) -> Iterator[GEMMShape]:
        return iter(self.shapes)

    def __len__(self) -> int:
        return len(self.shapes)

    @property
    def gemm_flops(self) -> int:
        return sum(shape.flops for shape in self.shapes)

    @property
    def total_flops(self) -> int:
        return self.gemm_flops + self.non_gemm_flops

    @property
    def gemm_bytes(self) -> int:
        return sum(shape.total_bytes for shape in self.shapes)

    def add(self, shape: GEMMShape) -> None:
        self.shapes.append(shape)

    def scaled(self, repeat: int) -> "GEMMWorkload":
        """Return a workload with every GEMM repeated ``repeat`` times (e.g. batching)."""
        if repeat <= 0:
            raise ValueError("repeat must be positive")
        return GEMMWorkload(
            name=f"{self.name}x{repeat}",
            shapes=list(self.shapes) * repeat,
            non_gemm_flops=self.non_gemm_flops * repeat,
            non_gemm_bytes=self.non_gemm_bytes * repeat,
        )


def paper_matrix_sizes(figure: int = 7) -> Sequence[int]:
    """Return the matrix sizes swept by Fig. 6 (``figure=6``) or Fig. 7 (``figure=7``)."""
    if figure == 6:
        return FIG6_MATRIX_SIZES
    if figure == 7:
        return FIG7_MATRIX_SIZES
    raise ValueError(f"no matrix-size sweep defined for figure {figure}")


def square_workload(size: int, precision: Precision = Precision.FP64) -> GEMMShape:
    """A single square GEMM of the given size (the unit of Figs. 6 and 7)."""
    return GEMMShape(size, size, size, precision)


def sweep_square_sizes(
    sizes: Iterable[int], precision: Precision = Precision.FP64
) -> List[GEMMShape]:
    """Square GEMMs for every size in ``sizes``."""
    return [square_workload(size, precision) for size in sizes]


def random_workloads(
    count: int,
    min_dim: int = 64,
    max_dim: int = 4096,
    precision: Precision = Precision.FP32,
    seed: Optional[int] = None,
) -> List[GEMMShape]:
    """Random rectangular GEMM shapes, useful for fuzzing the schedulers."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if min_dim <= 0 or max_dim < min_dim:
        raise ValueError("invalid dimension bounds")
    rng = random.Random(seed)
    shapes = []
    for _ in range(count):
        m = rng.randint(min_dim, max_dim)
        n = rng.randint(min_dim, max_dim)
        k = rng.randint(min_dim, max_dim)
        shapes.append(GEMMShape(m, n, k, precision))
    return shapes


def hpl_like_workloads(
    max_size: int = 9216, step: int = 1024, precision: Precision = Precision.FP64
) -> GEMMWorkload:
    """An HPL-style workload: a ladder of square GEMMs up to ``max_size``.

    The paper sources its GEMM problems from the HPL benchmark package [7];
    HPL's LU factorisation spends its time in trailing-matrix updates whose
    GEMM sizes shrink as the factorisation proceeds, which this ladder mimics.
    """
    if max_size <= 0 or step <= 0:
        raise ValueError("max_size and step must be positive")
    sizes = list(range(step, max_size + 1, step))
    if not sizes:
        sizes = [max_size]
    shapes = [GEMMShape(size, size, size, precision) for size in reversed(sizes)]
    return GEMMWorkload(name=f"hpl-like-{max_size}", shapes=shapes)
