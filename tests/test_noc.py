"""Tests for the NoC substrate: mesh, X-Y routing, packets, routers, network, contention."""

import pytest
from hypothesis import given, strategies as st

from repro.noc import (
    FlitType,
    MeshNetwork,
    MeshTopology,
    NocConfig,
    NocContentionModel,
    Packet,
    Router,
    xy_route,
)
from repro.noc.routing import route_links


class TestMeshTopology:
    def test_paper_mesh_is_4x4(self):
        mesh = MeshTopology()
        assert mesh.num_nodes == 16

    def test_node_id_coordinate_roundtrip(self):
        mesh = MeshTopology(4, 4)
        for node_id in range(16):
            assert mesh.node_id(mesh.coordinate(node_id)) == node_id

    def test_corner_has_two_neighbors(self):
        mesh = MeshTopology(4, 4)
        assert len(mesh.neighbors(0)) == 2

    def test_center_has_four_neighbors(self):
        mesh = MeshTopology(4, 4)
        assert len(mesh.neighbors(5)) == 4

    def test_link_count(self):
        # A 4x4 mesh has 2*(3*4 + 4*3) = 48 directed links.
        assert MeshTopology(4, 4).num_links == 48

    def test_hop_distance_is_manhattan(self):
        mesh = MeshTopology(4, 4)
        assert mesh.hop_distance(0, 15) == 6
        assert mesh.hop_distance(5, 6) == 1

    def test_average_hop_distance_positive(self):
        assert 2.0 < MeshTopology(4, 4).average_hop_distance() < 3.0

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValueError):
            MeshTopology(4, 4).coordinate(16)


class TestXYRouting:
    def test_route_endpoints(self):
        mesh = MeshTopology(4, 4)
        path = xy_route(mesh, 0, 15)
        assert path[0] == 0 and path[-1] == 15

    def test_route_goes_x_first(self):
        mesh = MeshTopology(4, 4)
        path = xy_route(mesh, 0, 15)
        # From (0,0) to (3,3): first three hops move along x.
        assert path[:4] == [0, 1, 2, 3]

    def test_route_length_equals_manhattan_distance(self):
        mesh = MeshTopology(4, 4)
        for src in range(16):
            for dst in range(16):
                assert len(xy_route(mesh, src, dst)) - 1 == mesh.hop_distance(src, dst)

    def test_route_to_self(self):
        mesh = MeshTopology(4, 4)
        assert xy_route(mesh, 5, 5) == [5]

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_consecutive_route_nodes_are_adjacent(self, src, dst):
        mesh = MeshTopology(4, 4)
        path = xy_route(mesh, src, dst)
        for a, b in zip(path, path[1:]):
            assert b in mesh.neighbors(a)

    def test_xy_routing_is_deterministic(self):
        mesh = MeshTopology(4, 4)
        assert xy_route(mesh, 2, 13) == xy_route(mesh, 2, 13)

    def test_route_links_count(self):
        mesh = MeshTopology(4, 4)
        assert len(route_links(mesh, 0, 5)) == mesh.hop_distance(0, 5)


class TestPackets:
    def test_flit_count_from_payload(self):
        packet = Packet(packet_id=0, src=0, dst=1, payload_bytes=100, link_width_bytes=32)
        assert packet.num_flits == 4

    def test_zero_payload_still_one_flit(self):
        packet = Packet(packet_id=0, src=0, dst=1, payload_bytes=0)
        assert packet.num_flits == 1
        assert packet.flits()[0].flit_type is FlitType.HEAD_TAIL

    def test_flit_sequence_structure(self):
        packet = Packet(packet_id=1, src=0, dst=3, payload_bytes=96, link_width_bytes=32)
        flits = packet.flits()
        assert flits[0].flit_type is FlitType.HEAD
        assert flits[-1].flit_type is FlitType.TAIL
        assert all(flit.flit_type is FlitType.BODY for flit in flits[1:-1])

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Packet(packet_id=0, src=0, dst=1, payload_bytes=-1)


class TestRouter:
    def test_forward_serialises_flits(self):
        router = Router(node_id=0)
        packet = Packet(packet_id=0, src=0, dst=1, payload_bytes=128, link_width_bytes=32)
        done = router.forward(packet, next_hop=1, now=0.0, cycle_time=1.0)
        # 3-cycle pipeline + 4 flits of serialization.
        assert done == pytest.approx(7.0)

    def test_contention_queues_second_packet(self):
        router = Router(node_id=0, num_virtual_channels=1)
        p1 = Packet(packet_id=0, src=0, dst=1, payload_bytes=320, link_width_bytes=32)
        p2 = Packet(packet_id=1, src=0, dst=1, payload_bytes=320, link_width_bytes=32)
        first = router.forward(p1, 1, 0.0, 1.0)
        second = router.forward(p2, 1, 0.0, 1.0)
        assert second > first

    def test_virtual_channels_reduce_blocking(self):
        single = Router(node_id=0, num_virtual_channels=1)
        multi = Router(node_id=0, num_virtual_channels=4)
        payload = 320
        times_single = [
            single.forward(Packet(i, 0, 1, payload, 32), 1, 0.0, 1.0) for i in range(4)
        ]
        times_multi = [
            multi.forward(Packet(i, 0, 1, payload, 32), 1, 0.0, 1.0) for i in range(4)
        ]
        assert max(times_multi) < max(times_single)


class TestMeshNetwork:
    def test_config_bandwidth_matches_paper(self):
        config = NocConfig()
        # 256-bit links at 2 GHz -> 64 GB/s per direction, 128 GB/s bidirectional.
        assert config.link_bandwidth_bytes_per_s == pytest.approx(64e9)
        assert config.node_bandwidth_bytes_per_s == pytest.approx(128e9)

    def test_send_delivers_with_positive_latency(self):
        network = MeshNetwork()
        result = network.send(0, 15, payload_bytes=256)
        assert result.hops == 6
        assert result.latency_s > 0

    def test_longer_routes_take_longer(self):
        network = MeshNetwork()
        near = network.send(0, 1, 256).latency_s
        far = network.send(0, 15, 256).latency_s
        assert far > near

    def test_zero_load_latency_monotonic_in_payload(self):
        network = MeshNetwork()
        assert network.zero_load_latency_s(0, 15, 64) < network.zero_load_latency_s(0, 15, 4096)

    def test_traffic_accounting(self):
        network = MeshNetwork()
        network.send(0, 5, 100)
        network.send(3, 9, 200)
        assert network.packets_sent == 2
        assert network.bytes_sent == 300
        assert network.average_latency_s > 0


class TestContentionModel:
    def test_link_load_grows_with_active_nodes(self):
        model = NocContentionModel()
        # With X-Y routing and uniform slice-interleaved traffic, the hottest
        # link already carries a full node's worth of flow with two active
        # nodes; adding more nodes never reduces it.
        assert model.max_link_load_factor(16) > model.max_link_load_factor(1)
        assert model.max_link_load_factor(16) >= model.max_link_load_factor(2)

    def test_sustained_bandwidth_never_exceeds_demand(self):
        model = NocContentionModel()
        demand = 10e9
        for nodes in (1, 4, 16):
            assert model.sustained_node_bandwidth(nodes, demand) <= demand * 1.0001

    def test_sustained_bandwidth_decreases_with_nodes_at_high_demand(self):
        model = NocContentionModel()
        demand = 60e9
        assert model.sustained_node_bandwidth(16, demand) < model.sustained_node_bandwidth(1, demand)

    def test_slowdown_at_least_one(self):
        model = NocContentionModel()
        assert model.slowdown(8, 20e9) >= 1.0

    def test_saturation_node_count(self):
        model = NocContentionModel()
        light = model.saturation_node_count(1e9)
        heavy = model.saturation_node_count(50e9)
        assert heavy <= light
