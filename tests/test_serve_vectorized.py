"""Parity suite for the array-based serve engine (DESIGN.md section 9).

The vectorised serve core keeps its scalar twins around as oracles, and this
file is the contract between them: the NumPy trace generators must reproduce
the scalar generators element for element, the array event engine must emit
byte-identical ``to_json`` reports against the scalar reference across every
scheduler × batching mode × seed, and sharded runs must merge back to the
exact single-shard report for any shard count or worker-pool size.
"""

import json
import math
import random

import numpy as np
import pytest

from repro.analysis import latency_summary, percentile
from repro.core import maco_default_config
from repro.serve import (
    SCHEDULER_NAMES,
    RequestTrace,
    ServeSimulator,
    TraceColumns,
    bursty_trace,
    bursty_trace_scalar,
    llm_tenants,
    poisson_trace,
    poisson_trace_scalar,
    replay_trace,
)

# The tenant/trace/simulator factories live in parity_utils.py, shared with
# the other parity suites and mirrored by the conformance fuzz layer's
# samplers.
from parity_utils import (
    make_mixed_tenants as mixed_tenants,
    make_serve_simulator as simulator,
    make_serve_trace as serve_trace,
)


# ----------------------------------------------------------- generator parity
class TestGeneratorParity:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_poisson_matches_scalar_element_for_element(self, seed):
        tenants = mixed_tenants()
        fast = poisson_trace(tenants, duration_s=30.0, seed=seed)
        slow = poisson_trace_scalar(tenants, duration_s=30.0, seed=seed)
        assert fast.to_records() == slow.to_records()

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_bursty_matches_scalar_element_for_element(self, seed):
        tenants = mixed_tenants()
        fast = bursty_trace(tenants, duration_s=30.0, seed=seed)
        slow = bursty_trace_scalar(tenants, duration_s=30.0, seed=seed)
        assert fast.to_records() == slow.to_records()

    def test_bursty_saturating_branch_matches_scalar(self):
        # burst_factor * burst_fraction >= 1 pushes every arrival into the
        # burst window (off rate 0) — the branch with the thinning rejects.
        tenants = mixed_tenants()
        fast = bursty_trace(tenants, 20.0, seed=3, burst_factor=10.0, burst_fraction=0.2)
        slow = bursty_trace_scalar(tenants, 20.0, seed=3, burst_factor=10.0, burst_fraction=0.2)
        assert fast.to_records() == slow.to_records()

    def test_columns_and_requests_views_agree(self):
        trace = serve_trace()
        rebuilt = RequestTrace(name=trace.name, requests=list(trace),
                               duration_s=trace.duration_s)
        assert rebuilt.to_records() == trace.to_records()
        assert isinstance(trace.columns, TraceColumns)
        assert len(trace.columns) == len(trace)

    def test_columnar_storage_is_compact(self):
        trace = poisson_trace(llm_tenants(2, rate_rps=5000.0), duration_s=10.0, seed=1)
        assert len(trace) > 50_000
        # ~50 bytes per request in columns; a dataclass per request costs kB.
        assert trace.columns.nbytes < 64 * len(trace)


# -------------------------------------------------------------- engine parity
class TestEngineParity:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    @pytest.mark.parametrize("batching", ["request", "step"])
    @pytest.mark.parametrize("seed", [7, 23])
    def test_array_engine_matches_scalar_byte_for_byte(self, scheduler, batching, seed):
        trace = serve_trace(seed=seed)
        fast = simulator("array", scheduler, batching).run(trace)
        slow = simulator("scalar", scheduler, batching).run(trace)
        assert fast.to_json() == slow.to_json()

    def test_multi_server_closed_form_fallback_matches_scalar(self):
        # One node keeps fcfs on the closed-form prefix scan; several nodes
        # exercise the heap loop. Both must agree with the scalar reference.
        trace = serve_trace(seed=11)
        for nodes in (1, 3):
            config = maco_default_config(num_nodes=nodes)
            fast = ServeSimulator(config=config, engine="array").run(trace)
            slow = ServeSimulator(config=config, engine="scalar").run(trace)
            assert fast.to_json() == slow.to_json()

    def test_engine_name_is_validated(self):
        with pytest.raises(ValueError, match="engine"):
            ServeSimulator(engine="quantum")


# -------------------------------------------------------------- shard parity
class TestShardParity:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_reports_identical_across_shard_counts(self, scheduler):
        trace = serve_trace(seed=5, duration=30.0)
        reports = {
            shards: simulator("array", scheduler).run(trace, shards=shards).to_json()
            for shards in (1, 2, 7)
        }
        assert reports[1] == reports[2] == reports[7]

    def test_reports_identical_across_jobs(self):
        trace = serve_trace(seed=5, duration=30.0)
        serial = simulator("array", jobs=1).run(trace, shards=4).to_json()
        pooled = simulator("array", jobs=2).run(trace, shards=4).to_json()
        assert serial == pooled

    def test_scalar_engine_honours_shards_too(self):
        trace = serve_trace(seed=9)
        fast = simulator("array").run(trace, shards=3).to_json()
        slow = simulator("scalar").run(trace, shards=3).to_json()
        assert fast == slow

    def test_sharding_rejects_bad_counts(self):
        trace = serve_trace()
        with pytest.raises(ValueError, match="shards"):
            simulator("array").run(trace, shards=0)

    def test_step_mode_reports_identical_across_shard_counts(self):
        # The step-batching loop now has its own sharding contract: cut
        # points come from a conservative serial-drain bound over the trace
        # alone, every segment starts cold, so any shards >= 1 agree byte
        # for byte (shards=None stays the continuous reference semantics).
        trace = serve_trace(seed=5, duration=30.0)
        step = ServeSimulator(config=maco_default_config(num_nodes=4),
                              batching="step", max_batch=8)
        reports = {
            shards: step.run(trace, shards=shards).to_json()
            for shards in (1, 2, 7)
        }
        assert reports[1] == reports[2] == reports[7]


# -------------------------------------------------------- percentile parity
class TestPercentileParity:
    def test_partition_path_matches_scalar_on_random_inputs(self):
        rng = random.Random(42)
        for _ in range(25):
            size = rng.choice([1, 2, 17, 1023, 1024, 4097])
            values = [rng.random() * 1e3 for _ in range(size)]
            for q in (0, 1, 50, 95, 99, 100, rng.random() * 100):
                rank = max(1, math.ceil(q / 100.0 * size))
                reference = sorted(values)[rank - 1]
                assert percentile(values, q) == reference
                assert percentile(np.asarray(values), q) == reference

    def test_latency_summary_accepts_arrays(self):
        values = np.linspace(1.0, 2.0, 5000)
        summary = latency_summary(values)
        assert summary["p50"] == percentile(values, 50)
        assert summary["p95"] == percentile(values, 95)
        assert summary["mean"] == pytest.approx(1.5)


# ------------------------------------------------------------ replay streaming
class TestReplayStreaming:
    def test_streams_file_without_materializing(self, tmp_path):
        trace = serve_trace(seed=13)
        path = tmp_path / "trace.json"
        trace.save(path)
        replayed = replay_trace(path)
        assert replayed.to_records() == trace.to_records()
        report_a = simulator("array").run(trace).to_json()
        report_b = simulator("array").run(replayed).to_json()
        # Only the trace name differs between the two reports.
        assert json.loads(report_a)["tenants"] == json.loads(report_b)["tenants"]

    def test_duplicate_request_id_is_an_error(self):
        records = [
            {"request_id": 4, "tenant": "a", "workload": "bert", "arrival_s": 0.1},
            {"request_id": 4, "tenant": "a", "workload": "bert", "arrival_s": 0.2},
        ]
        with pytest.raises(ValueError, match="duplicate"):
            replay_trace(records)

    def test_out_of_order_request_id_is_an_error(self):
        records = [
            {"request_id": 9, "tenant": "a", "workload": "bert", "arrival_s": 0.1},
            {"request_id": 2, "tenant": "a", "workload": "bert", "arrival_s": 0.2},
        ]
        with pytest.raises(ValueError, match="out-of-order"):
            replay_trace(records)

    def test_mixed_id_presence_is_an_error(self):
        records = [
            {"request_id": 1, "tenant": "a", "workload": "bert", "arrival_s": 0.1},
            {"tenant": "a", "workload": "bert", "arrival_s": 0.2},
        ]
        with pytest.raises(ValueError, match="request_id"):
            replay_trace(records)

    def test_malformed_record_reports_its_position(self):
        records = [
            {"tenant": "a", "workload": "bert", "arrival_s": 0.1},
            {"tenant": "a", "workload": "bert"},
        ]
        with pytest.raises(ValueError, match="record 1"):
            replay_trace(records)
