"""Directory-based MOESI cache coherence (the CCM of the paper).

Each Cache Coherence Manager (CCM) owns a slice of the distributed L3 cache
and a directory that tracks, per cache line, the MOESI state and the set of
compute nodes holding a copy (paper Section III.A).  The model is a protocol
state machine plus message accounting — enough to (a) verify protocol
invariants in tests and (b) charge coherence traffic to the NoC model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


class CoherenceState(enum.Enum):
    """MOESI line states as tracked by the directory."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class CoherenceProtocolError(Exception):
    """Raised when a request would violate the MOESI protocol invariants."""


@dataclass
class DirectoryEntry:
    """Directory state for one cache line."""

    line_address: int
    state: CoherenceState = CoherenceState.INVALID
    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)

    def check_invariants(self) -> None:
        """Raise if the entry violates MOESI invariants."""
        if self.state in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE):
            if self.owner is None:
                raise CoherenceProtocolError(f"{self.state.name} line {self.line_address:#x} has no owner")
            if self.sharers - {self.owner}:
                raise CoherenceProtocolError(
                    f"{self.state.name} line {self.line_address:#x} has extra sharers {self.sharers}"
                )
        if self.state is CoherenceState.OWNED and self.owner is None:
            raise CoherenceProtocolError(f"OWNED line {self.line_address:#x} has no owner")
        if self.state is CoherenceState.INVALID and (self.owner is not None or self.sharers):
            raise CoherenceProtocolError(f"INVALID line {self.line_address:#x} still tracked")
        if self.state is CoherenceState.SHARED and not self.sharers:
            raise CoherenceProtocolError(f"SHARED line {self.line_address:#x} has no sharers")


@dataclass
class CoherenceResponse:
    """Result of a directory request: latency class plus messages generated."""

    state: CoherenceState
    data_from_memory: bool
    invalidations_sent: int
    forwarded_from_owner: bool

    @property
    def messages(self) -> int:
        """Coherence messages on the NoC caused by this request (excluding the request itself)."""
        count = 1  # the data/ack response
        count += self.invalidations_sent * 2  # invalidation + ack per sharer
        if self.forwarded_from_owner:
            count += 1
        return count


class DirectoryController:
    """A CCM: directory + request handlers for reads, writes and evictions.

    Nodes are identified by integer ids.  The controller does not move data; it
    updates directory state and reports what traffic the request generated so
    the caller can charge NoC/DRAM time.
    """

    def __init__(self, name: str = "ccm") -> None:
        self.name = name
        self._directory: Dict[int, DirectoryEntry] = {}
        self.read_requests = 0
        self.write_requests = 0
        self.invalidations = 0
        self.memory_fetches = 0

    def entry(self, line_address: int) -> DirectoryEntry:
        if line_address not in self._directory:
            self._directory[line_address] = DirectoryEntry(line_address)
        return self._directory[line_address]

    def lookup_state(self, line_address: int) -> CoherenceState:
        entry = self._directory.get(line_address)
        return entry.state if entry else CoherenceState.INVALID

    # ------------------------------------------------------------------ requests
    def handle_read(self, node_id: int, line_address: int) -> CoherenceResponse:
        """A node asks for a readable copy of the line."""
        self.read_requests += 1
        entry = self.entry(line_address)
        forwarded = False
        data_from_memory = False

        if entry.state is CoherenceState.INVALID:
            data_from_memory = True
            self.memory_fetches += 1
            entry.state = CoherenceState.EXCLUSIVE
            entry.owner = node_id
            entry.sharers = {node_id}
        elif entry.state in (CoherenceState.MODIFIED, CoherenceState.OWNED):
            # Owner forwards the data and the line becomes OWNED/shared.
            forwarded = True
            entry.state = CoherenceState.OWNED
            entry.sharers.add(node_id)
        elif entry.state is CoherenceState.EXCLUSIVE:
            if entry.owner == node_id:
                pass  # silent re-read by the owner
            else:
                forwarded = True
                entry.state = CoherenceState.SHARED
                entry.sharers.add(node_id)
                entry.owner = None
        else:  # SHARED
            entry.sharers.add(node_id)

        entry.check_invariants()
        return CoherenceResponse(
            state=entry.state,
            data_from_memory=data_from_memory,
            invalidations_sent=0,
            forwarded_from_owner=forwarded,
        )

    def handle_write(self, node_id: int, line_address: int) -> CoherenceResponse:
        """A node asks for an exclusive (writable) copy of the line."""
        self.write_requests += 1
        entry = self.entry(line_address)
        data_from_memory = False
        forwarded = False

        others = (entry.sharers | ({entry.owner} if entry.owner is not None else set())) - {node_id}
        invalidations = len(others)
        self.invalidations += invalidations

        if entry.state is CoherenceState.INVALID:
            data_from_memory = True
            self.memory_fetches += 1
        elif entry.state in (CoherenceState.MODIFIED, CoherenceState.OWNED, CoherenceState.EXCLUSIVE):
            forwarded = entry.owner is not None and entry.owner != node_id

        entry.state = CoherenceState.MODIFIED
        entry.owner = node_id
        entry.sharers = {node_id}
        entry.check_invariants()
        return CoherenceResponse(
            state=entry.state,
            data_from_memory=data_from_memory,
            invalidations_sent=invalidations,
            forwarded_from_owner=forwarded,
        )

    def handle_eviction(self, node_id: int, line_address: int) -> bool:
        """A node drops its copy; returns True if the line had to be written back."""
        entry = self._directory.get(line_address)
        if entry is None or entry.state is CoherenceState.INVALID:
            return False
        writeback = entry.state in (CoherenceState.MODIFIED, CoherenceState.OWNED) and entry.owner == node_id
        entry.sharers.discard(node_id)
        if entry.owner == node_id:
            entry.owner = None
        if not entry.sharers and entry.owner is None:
            entry.state = CoherenceState.INVALID
        elif entry.owner is None:
            entry.state = CoherenceState.SHARED
        entry.check_invariants()
        return writeback

    # ------------------------------------------------------------------ queries
    def sharers_of(self, line_address: int) -> Set[int]:
        entry = self._directory.get(line_address)
        return set(entry.sharers) if entry else set()

    def tracked_lines(self) -> List[int]:
        return [addr for addr, entry in self._directory.items() if entry.state is not CoherenceState.INVALID]

    def check_all_invariants(self) -> None:
        for entry in self._directory.values():
            entry.check_invariants()
