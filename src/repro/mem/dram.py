"""DDR memory controller / DRAM bandwidth-latency-capacity model.

The NoC provides up to 128 GB/s per compute node (paper Section III.A); the
DDR controllers behind the CCMs provide a finite aggregate bandwidth that
becomes the bottleneck when many nodes stream large matrices simultaneously —
the effect behind the Fig. 7 scalability loss.  The same channels also bound
*capacity*: each node's DRAM share must hold the resident model weights plus
whatever KV state the serving layer admits, which is where the auto-derived
per-node KV budget comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class DRAMConfig:
    """Aggregate DRAM subsystem parameters."""

    num_channels: int = 4
    channel_bandwidth_bytes_per_s: float = 51.2e9  # e.g. one DDR5-6400 64-bit channel
    access_latency_ns: float = 80.0
    row_buffer_bytes: int = 8192
    channel_capacity_bytes: int = 16 << 30  # e.g. one 16 GiB DDR5 DIMM per channel

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if self.channel_bandwidth_bytes_per_s <= 0:
            raise ValueError("channel bandwidth must be positive")
        if self.access_latency_ns < 0:
            raise ValueError("access latency cannot be negative")
        if self.channel_capacity_bytes <= 0:
            raise ValueError("channel capacity must be positive")

    @property
    def total_bandwidth_bytes_per_s(self) -> float:
        return self.num_channels * self.channel_bandwidth_bytes_per_s

    @property
    def total_capacity_bytes(self) -> int:
        """Aggregate DRAM capacity across every channel."""
        return self.num_channels * self.channel_capacity_bytes


@dataclass
class DRAMModel:
    """Tracks DRAM traffic and converts transfer sizes into time.

    The model is a bandwidth-latency (LogGP-style) abstraction: a transfer of
    ``size`` bytes costs ``access_latency + size / effective_bandwidth``, where
    the effective bandwidth shrinks as more agents stream concurrently.
    """

    config: DRAMConfig = field(default_factory=DRAMConfig)
    bytes_read: int = 0
    bytes_written: int = 0
    requests: int = 0

    def effective_bandwidth(self, concurrent_streams: int = 1) -> float:
        """Aggregate bandwidth available to ``concurrent_streams`` equal streams.

        Channel-level parallelism lets a handful of streams use the full
        aggregate bandwidth; beyond that, bank conflicts and row-buffer misses
        erode efficiency slightly (empirically ~3% per extra stream, floor 70%).
        """
        if concurrent_streams <= 0:
            raise ValueError("concurrent_streams must be positive")
        total = self.config.total_bandwidth_bytes_per_s
        if concurrent_streams <= self.config.num_channels:
            return total
        excess = concurrent_streams - self.config.num_channels
        efficiency = max(0.70, 1.0 - 0.03 * excess)
        return total * efficiency

    def transfer_time_s(self, size_bytes: int, concurrent_streams: int = 1, write: bool = False) -> float:
        """Time to move ``size_bytes`` to/from DRAM given the stream count."""
        if size_bytes < 0:
            raise ValueError("size_bytes cannot be negative")
        self.requests += 1
        if write:
            self.bytes_written += size_bytes
        else:
            self.bytes_read += size_bytes
        bandwidth_share = self.effective_bandwidth(concurrent_streams) / concurrent_streams
        return self.config.access_latency_ns * 1e-9 + size_bytes / bandwidth_share

    def per_stream_bandwidth(self, concurrent_streams: int = 1) -> float:
        """Bandwidth one of ``concurrent_streams`` equal streams can sustain."""
        return self.effective_bandwidth(concurrent_streams) / concurrent_streams

    def node_capacity_bytes(self, num_nodes: int = 1) -> int:
        """DRAM capacity one of ``num_nodes`` equal nodes can claim.

        The aggregate capacity behind the CCMs splits evenly across the fleet,
        mirroring :meth:`per_stream_bandwidth`.  The serving simulator sizes
        its per-node KV budget as this share minus the resident model weights
        (``repro.serve.autoscale.derive_kv_budget``).
        """
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        return self.config.total_capacity_bytes // num_nodes

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def traffic_summary(self) -> Dict[str, float]:
        return {
            "bytes_read": float(self.bytes_read),
            "bytes_written": float(self.bytes_written),
            "requests": float(self.requests),
        }

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.requests = 0
