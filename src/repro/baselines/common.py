"""Shared interface and comparison harness for the Fig. 8 baselines."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import MACOConfig, maco_default_config
from repro.core.metrics import WorkloadResult, geometric_mean
from repro.gemm.workloads import GEMMWorkload


class BaselineModel(abc.ABC):
    """A system that can run a GEMM+ workload and report throughput."""

    name: str = "baseline"

    def __init__(self, config: Optional[MACOConfig] = None) -> None:
        self.config = config if config is not None else maco_default_config()

    @abc.abstractmethod
    def run_workload(self, workload: GEMMWorkload, num_nodes: Optional[int] = None) -> WorkloadResult:
        """Run the workload and return its throughput result."""


@dataclass
class BaselineComparison:
    """Results of every system on every workload (the Fig. 8 data)."""

    results: Dict[str, Dict[str, WorkloadResult]] = field(default_factory=dict)

    def add(self, result: WorkloadResult) -> None:
        self.results.setdefault(result.system, {})[result.name] = result

    def systems(self) -> List[str]:
        return list(self.results)

    def workloads(self) -> List[str]:
        names: List[str] = []
        for per_system in self.results.values():
            for name in per_system:
                if name not in names:
                    names.append(name)
        return names

    def throughput(self, system: str, workload: str) -> float:
        return self.results[system][workload].gflops

    def average_speedup(self, system: str, over: str) -> float:
        """Geometric-mean speedup of ``system`` over ``over`` across all workloads."""
        ratios = []
        for workload in self.workloads():
            ratios.append(self.throughput(system, workload) / self.throughput(over, workload))
        return geometric_mean(ratios)

    def best_throughput(self, system: str) -> float:
        return max(result.gflops for result in self.results[system].values())


def compare_systems(
    systems: List[BaselineModel],
    workloads: List[GEMMWorkload],
    num_nodes: Optional[int] = None,
    jobs: Optional[int] = None,
) -> BaselineComparison:
    """Run every workload on every system (the Fig. 8 experiment driver).

    With ``jobs`` set, the (system, workload) pairs fan out over a
    :class:`repro.core.batch.SweepRunner` worker pool; each worker rebuilds
    the system from its class and configuration, so results are identical to
    the serial path.
    """
    comparison = BaselineComparison()
    if jobs is None or jobs == 1:
        for system in systems:
            for workload in workloads:
                comparison.add(system.run_workload(workload, num_nodes=num_nodes))
        return comparison

    from repro.core.batch import SweepRunner

    runner = SweepRunner(jobs=jobs)
    for result in runner.run_workloads(systems, workloads, num_nodes=num_nodes):
        comparison.add(result)
    return comparison
