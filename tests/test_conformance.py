"""Golden-model conformance harness and property-based scenario fuzzing.

Covers the three layers of ``repro.conformance``:

* the **golden corpus** — the committed ``tests/golden/`` files pass, span
  every precision, and pin the golden models (fingerprint drift fails);
* the **harness error paths** — a mutated kernel is caught with a message
  naming the kernel, seed and worst element plus a replayable spec;
  malformed golden files fail loudly naming the file; ``--regen`` is
  guarded against dirty corpora and refused outright in CI;
* the **fuzz layer** — scenario generation is deterministic in
  ``(seed, index)``, every kind holds on its canonical budget, violations
  shrink to minimal replayable specs, and the edge scenarios the PR's fuzz
  sweep probed (near-empty traces, boundary percentiles, single-tenant
  fleets) stay pinned.  The sweep itself (1000 cases over seeds 0-4) found
  no violations — the invariants inherited from the earlier parity PRs held.
"""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.conformance import (
    KERNELS,
    PRECISION_TOLERANCES,
    DEFAULT_GOLDEN_DIR,
    GoldenCase,
    GoldenFileError,
    RegenRefused,
    ScenarioSpec,
    case_fingerprint,
    compare_arrays,
    default_corpus,
    fuzz,
    kernel_for,
    load_golden_file,
    replay,
    run_case,
    run_corpus,
    run_scenario,
    write_golden_file,
)
from repro.conformance.fuzz import SCENARIO_KINDS, ScenarioFailure
from repro.conformance.harness import _check_regen_allowed
from repro.gemm.precision import Precision


def corpus_case(name):
    matches = [case for case in default_corpus() if case.name == name]
    assert matches, f"no corpus case named {name}"
    return matches[0]


# ----------------------------------------------------------- corpus contents
class TestCorpusShape:
    def test_covers_at_least_twelve_cases_and_every_precision(self):
        corpus = default_corpus()
        assert len(corpus) >= 12
        gemm_precisions = {
            case.precision for case in corpus
            if case.kernel in ("gemm", "tiled-gemm", "im2col-conv")
        }
        assert gemm_precisions == set(Precision)

    def test_every_kernel_is_exercised(self):
        used = {case.kernel for case in default_corpus()}
        assert used == set(KERNELS)

    def test_case_names_are_unique(self):
        names = [case.name for case in default_corpus()]
        assert len(names) == len(set(names))

    def test_tolerances_follow_the_precision_policy(self):
        for case in default_corpus():
            rtol, atol = PRECISION_TOLERANCES[case.precision]
            assert case.rtol == rtol
            assert case.atol == atol

    def test_case_record_round_trips(self):
        for case in default_corpus():
            assert GoldenCase.from_dict(case.to_dict()) == case

    def test_unknown_kernel_is_rejected_with_options(self):
        bogus = GoldenCase("x", "nope", 1, (), 0.1, 0.1)
        with pytest.raises(ValueError, match="unknown kernel"):
            kernel_for(bogus)


class TestCommittedCorpus:
    """The acceptance gate: the committed tests/golden/ files must pass."""

    def test_full_corpus_passes_against_committed_goldens(self):
        report = run_corpus()
        assert report.passed, "\n".join(r.message for r in report.failures)
        assert len(report.results) == len(default_corpus())

    def test_committed_files_exist_for_every_case(self):
        for case in default_corpus():
            path = DEFAULT_GOLDEN_DIR / f"{case.name}.json"
            assert path.exists(), f"missing committed golden {path.name}"
            committed_case, fingerprint = load_golden_file(path)
            assert committed_case == case
            assert fingerprint["shape"], f"{path.name} has no shape pin"

    def test_fingerprint_drift_is_reported_as_failure(self):
        case = corpus_case("moe-topk-8x2")
        path = DEFAULT_GOLDEN_DIR / f"{case.name}.json"
        _, fingerprint = load_golden_file(path)
        fingerprint = dict(fingerprint)
        fingerprint["mean"] = fingerprint["mean"] + 1.0
        result = run_case(case, committed=fingerprint)
        assert result.status == "fail"
        assert "fingerprint drifted" in result.message
        assert "mean" in result.message


# --------------------------------------------------------- mutation smoke test
class TestMutationDetection:
    """A deliberately perturbed kernel must be caught and fully diagnosed."""

    def test_perturbed_gemm_fails_with_named_worst_element(self, monkeypatch):
        kernel = KERNELS["gemm"]
        original = kernel.run_functional

        def mutated(case, inputs):
            output = original(case, inputs)
            output[3, 5] += 1.0  # the mutation: one poisoned accumulator
            return output

        # KernelDef is frozen, so mutate through the registry — the same
        # surface a bad refactor would change.
        monkeypatch.setitem(
            KERNELS, "gemm",
            type(kernel)(name=kernel.name, generate_inputs=kernel.generate_inputs,
                         run_functional=mutated, compute_golden=kernel.compute_golden),
        )
        case = corpus_case("gemm-square-fp64")
        result = run_case(case)
        assert result.status == "fail"
        # The failure message names the kernel, the seed and the worst element.
        assert "'gemm'" in result.message
        assert f"seed {case.seed}" in result.message
        assert "[3, 5]" in result.message
        assert result.worst is not None and result.worst.index == (3, 5)
        # And the repro spec replays to the same verdict.
        spec = result.repro_spec()
        assert spec["type"] == "golden"
        replayed = run_case(GoldenCase.from_dict(spec["case"]))
        assert replayed.status == "fail"

    def test_mutated_dataclass_kernels_cannot_hide(self, monkeypatch):
        # KernelDef is frozen; monkeypatch.setattr on a frozen dataclass
        # attribute raises — mutate through the registry instead, the way a
        # bad refactor would.
        case = corpus_case("wavefront-4x4")
        kernel = KERNELS[case.kernel]
        monkeypatch.setitem(
            KERNELS, case.kernel,
            type(kernel)(
                name=kernel.name,
                generate_inputs=kernel.generate_inputs,
                run_functional=lambda c, i: kernel.run_functional(c, i) * 1.0001,
                compute_golden=kernel.compute_golden,
            ),
        )
        result = run_case(case)
        assert result.status == "fail"
        assert "wavefront" in result.message

    def test_compare_arrays_flags_nan(self):
        golden = np.ones((2, 2))
        functional = golden.copy()
        functional[1, 0] = np.nan
        worst = compare_arrays(functional, golden, rtol=1e-6, atol=1e-6)
        assert worst is not None
        assert worst.index == (1, 0)


# ------------------------------------------------------------- harness errors
class TestGoldenFileErrors:
    def test_unparseable_json_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(GoldenFileError, match="broken.json"):
            load_golden_file(path)

    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"case": {}}))
        with pytest.raises(GoldenFileError, match="'case' and 'golden'"):
            load_golden_file(path)

    def test_malformed_case_record_rejected(self, tmp_path):
        path = tmp_path / "badcase.json"
        path.write_text(json.dumps({
            "case": {"name": "x"},  # missing kernel/seed/params/tolerances
            "golden": {},
        }))
        with pytest.raises(GoldenFileError, match="malformed golden case"):
            load_golden_file(path)

    def test_missing_golden_file_fails_the_corpus_run(self, tmp_path):
        case = corpus_case("gemm-plus-overlap")
        report = run_corpus(golden_dir=tmp_path, cases=[case])
        assert not report.passed
        assert "--regen" in report.results[0].message

    def test_stale_committed_spec_fails_the_corpus_run(self, tmp_path):
        case = corpus_case("gemm-plus-overlap")
        other = corpus_case("wavefront-4x4")
        rng = np.random.default_rng(other.seed)
        kernel = kernel_for(other)
        golden = kernel.compute_golden(other, kernel.generate_inputs(other, rng))
        # Commit the wrong spec under this case's file name.
        write_golden_file(tmp_path / f"{case.name}.json", other,
                          case_fingerprint(np.asarray(golden)))
        report = run_corpus(golden_dir=tmp_path, cases=[case])
        assert not report.passed
        assert "disagrees with the in-code corpus" in report.results[0].message


class TestRegenGuard:
    def test_allow_dirty_is_refused_in_ci(self, tmp_path):
        with pytest.raises(RegenRefused, match="refused in CI"):
            _check_regen_allowed(tmp_path, allow_dirty=True, env={"CI": "true"})

    def test_dirty_corpus_without_allow_dirty_is_refused(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.conformance.harness._working_tree_dirty", lambda _dir: True)
        with pytest.raises(RegenRefused, match="uncommitted changes"):
            _check_regen_allowed(tmp_path, allow_dirty=False, env={})

    def test_dirty_corpus_with_allow_dirty_proceeds_outside_ci(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.conformance.harness._working_tree_dirty", lambda _dir: True)
        _check_regen_allowed(tmp_path, allow_dirty=True, env={})

    def test_outside_git_regen_is_allowed(self, tmp_path):
        # _working_tree_dirty returns None outside a work tree; regen into a
        # scratch directory (the common tmp-corpus flow) must not be blocked.
        case = corpus_case("gemm-plus-overlap")
        report = run_corpus(golden_dir=tmp_path / "golden", cases=[case], regen=True)
        assert report.passed
        assert report.regenerated == [f"{case.name}.json"]
        # And a check run against the fresh corpus passes.
        check = run_corpus(golden_dir=tmp_path / "golden", cases=[case])
        assert check.passed


# ---------------------------------------------------------------- fuzz layer
class TestFuzzDeterminism:
    def test_same_seed_samples_identical_scenarios(self):
        first = fuzz(cases=21, seed=5)
        second = fuzz(cases=21, seed=5)
        assert [r.spec for r in first.results] == [r.spec for r in second.results]
        assert first.passed and second.passed

    def test_kinds_rotate_round_robin(self):
        report = fuzz(cases=2 * len(SCENARIO_KINDS), seed=0)
        counts = report.kind_counts()
        assert set(counts) == set(SCENARIO_KINDS)
        assert all(count == 2 for count in counts.values())

    def test_kind_filter_and_validation(self):
        report = fuzz(cases=4, seed=1, kinds=["percentile"])
        assert set(report.kind_counts()) == {"percentile"}
        with pytest.raises(ValueError, match="unknown scenario kind"):
            fuzz(cases=1, seed=0, kinds=["quantum"])
        with pytest.raises(ValueError, match="cases"):
            fuzz(cases=0, seed=0)

    def test_unknown_scenario_kind_rejected_at_run(self):
        with pytest.raises(ValueError, match="options"):
            run_scenario(ScenarioSpec(kind="quantum", params=()))


class TestFuzzFailureReporting:
    def test_violation_is_shrunk_and_replayable(self, monkeypatch):
        # Break the percentile invariant check itself so the fuzzer has a
        # violation to report, then confirm the repro spec replays it.
        # SCENARIO_KINDS is the registry object the fuzz module dispatches
        # through, so patching the shared dict reaches fuzz() and replay().
        kind = SCENARIO_KINDS["percentile"]

        def broken(spec):
            if int(spec.param("size")) > 1:
                raise ScenarioFailure(f"synthetic violation at size {spec.param('size')}")

        monkeypatch.setitem(
            SCENARIO_KINDS, "percentile",
            type(kind)(name=kind.name, sample=kind.sample, check=broken,
                       shrink_floor=kind.shrink_floor),
        )
        report = fuzz(cases=6, seed=3, kinds=["percentile"])
        assert not report.passed
        failure = report.failures[0]
        spec = failure.repro_spec()
        assert spec["type"] == "fuzz" and spec["kind"] == "percentile"
        # The shrinker drove every floorable parameter toward its floor while
        # the failure persisted; size floors at 1, which passes, so the
        # shrunk spec keeps a failing size but minimises the rest.
        assert replay(spec) is not None  # still fails on replay
        assert "synthetic violation" in spec["message"]

    def test_replay_of_passing_spec_returns_none(self):
        spec = ScenarioSpec(
            kind="percentile",
            params=tuple(sorted(
                {"size": 8, "q": 50.0, "seed": 1, "scale": 1.0}.items())),
        )
        assert replay(spec.to_dict()) is None

    def test_malformed_replay_record_rejected(self):
        with pytest.raises(ValueError, match="malformed fuzz scenario"):
            replay({"type": "fuzz"})


class TestPinnedEdgeScenarios:
    """Edge probes from this PR's fuzz sweep, pinned as regressions."""

    @pytest.mark.parametrize("params", [
        {"size": 1, "q": 0.0, "seed": 1, "scale": 1.0},
        {"size": 1024, "q": 100.0, "seed": 2, "scale": 1e6},
        {"size": 1023, "q": 0.001, "seed": 3, "scale": 1e-6},
    ])
    def test_percentile_boundaries(self, params):
        run_scenario(ScenarioSpec("percentile", tuple(sorted(params.items()))))

    def test_near_empty_trace_serve_parity(self):
        run_scenario(ScenarioSpec("serve-parity", tuple(sorted({
            "scheduler": "slo", "batching": "step", "seed": 13, "tenants": 2,
            "rate": 0.01, "duration": 2.0, "num_nodes": 2,
        }.items()))))

    def test_near_empty_trace_shard_invariance(self):
        run_scenario(ScenarioSpec("serve-shards", tuple(sorted({
            "scheduler": "rr", "batching": "request", "seed": 14, "tenants": 2,
            "rate": 0.01, "duration": 2.0, "num_nodes": 4, "shards": 5, "jobs": 2,
        }.items()))))

    def test_single_tenant_bursty_saturation(self):
        run_scenario(ScenarioSpec("trace-roundtrip", tuple(sorted({
            "generator": "bursty", "seed": 12, "tenants": 1, "rate": 0.05,
            "duration": 1.0, "burst_factor": 10.0, "burst_fraction": 0.5,
        }.items()))))


# ------------------------------------------------------------------ CLI layer
class TestConformanceCLI:
    def test_run_passes_against_committed_corpus(self, capsys):
        assert main(["conformance", "run"]) == 0
        output = capsys.readouterr().out
        assert "golden conformance corpus" in output
        assert "all 21 golden case(s) passed" in output

    def test_fuzz_smoke_budget(self, capsys):
        assert main(["conformance", "fuzz", "--cases", "14", "--seed", "0"]) == 0
        output = capsys.readouterr().out
        assert "all scenarios passed" in output

    def test_regen_into_scratch_dir_then_check(self, tmp_path, capsys):
        golden_dir = str(tmp_path / "scratch")
        assert main(["conformance", "run", "--regen", "--golden-dir", golden_dir]) == 0
        assert "regenerated 21 golden file(s)" in capsys.readouterr().out
        assert main(["conformance", "run", "--golden-dir", golden_dir]) == 0

    def test_regen_refused_in_ci_exits_2(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("CI", "true")
        code = main(["conformance", "run", "--regen", "--allow-dirty",
                     "--golden-dir", str(tmp_path)])
        assert code == 2
        assert "refused in CI" in capsys.readouterr().err

    def test_missing_corpus_fails_and_writes_failure_specs(self, tmp_path, capsys):
        failures = tmp_path / "failures.json"
        code = main(["conformance", "run", "--golden-dir", str(tmp_path / "nowhere"),
                     "--failures", str(failures)])
        assert code == 1
        record = json.loads(failures.read_text())
        assert len(record["failures"]) == len(default_corpus())
        assert record["failures"][0]["type"] == "golden"

    def test_replay_failure_file_round_trip(self, tmp_path, capsys):
        # A golden failure spec written by `run` replays through the CLI; the
        # un-mutated tree passes it, exiting 0.
        failures = tmp_path / "failures.json"
        main(["conformance", "run", "--golden-dir", str(tmp_path / "nowhere"),
              "--failures", str(failures)])
        capsys.readouterr()
        assert main(["conformance", "replay", str(failures)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_replay_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        assert main(["conformance", "replay", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_fuzz_rejects_unknown_kind_cleanly(self, capsys):
        assert main(["conformance", "fuzz", "--cases", "1", "--kind", "quantum"]) == 2
        assert "unknown scenario kind" in capsys.readouterr().err
