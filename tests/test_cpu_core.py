"""Tests for the CPU core, pipeline model, MMU and process management."""

import pytest

from repro.cpu.core import CPUCore
from repro.cpu.mmu import MMU
from repro.cpu.pipeline import InstructionMix, PipelineModel
from repro.cpu.process import ProcessManager
from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape
from repro.isa.registers import RegisterFile
from repro.mem.page_table import PageFaultError


class TestPipelineModel:
    def test_issue_width_bounds_ipc(self):
        model = PipelineModel(issue_width=4)
        mix = InstructionMix(integer_ops=4000)
        assert model.instructions_per_cycle(mix) <= 4.0

    def test_memory_stalls_increase_cycles(self):
        light = PipelineModel(l1_miss_rate=0.0)
        heavy = PipelineModel(l1_miss_rate=0.2)
        mix = InstructionMix(integer_ops=1000, loads=1000)
        assert heavy.estimate_cycles(mix) > light.estimate_cycles(mix)

    def test_branch_mispredictions_increase_cycles(self):
        good = PipelineModel(branch_mispredict_rate=0.0)
        bad = PipelineModel(branch_mispredict_rate=0.1)
        mix = InstructionMix(integer_ops=1000, branches=500)
        assert bad.estimate_cycles(mix) > good.estimate_cycles(mix)

    def test_empty_mix_costs_nothing(self):
        assert PipelineModel().estimate_cycles(InstructionMix()) == 0

    def test_breakdown_components_sum_close_to_total(self):
        model = PipelineModel()
        mix = InstructionMix(integer_ops=500, loads=300, stores=100, branches=100, fp_ops=200)
        breakdown = model.breakdown(mix)
        total = model.estimate_cycles(mix)
        assert total >= max(breakdown["issue_bound"], 1)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            PipelineModel(l1_miss_rate=1.5)


class TestCPUCorePeaks:
    def test_table4_fp64_peak(self):
        core = CPUCore()
        assert core.peak_gflops(Precision.FP64) == pytest.approx(35.2)

    def test_table4_fp32_peak(self):
        core = CPUCore()
        assert core.peak_gflops(Precision.FP32) == pytest.approx(70.4, rel=0.01)

    def test_gemm_time_positive_and_below_peak(self):
        core = CPUCore()
        shape = GEMMShape(1024, 1024, 1024, Precision.FP64)
        result = core.run_gemm(shape)
        assert result.seconds > 0
        assert result.gflops <= core.peak_gflops(Precision.FP64)

    def test_gemm_efficiency_degrades_for_tiny_matrices(self):
        core = CPUCore()
        big = core.gemm_efficiency(GEMMShape(2048, 2048, 2048))
        tiny = core.gemm_efficiency(GEMMShape(32, 32, 32))
        assert tiny < big

    def test_elementwise_is_memory_bound_for_low_intensity(self):
        core = CPUCore(memory_bandwidth_bytes_per_s=10e9)
        result = core.run_elementwise(flops=1000, bytes_touched=10_000_000)
        assert result.seconds == pytest.approx(10_000_000 / 10e9)

    def test_elementwise_rejects_negative(self):
        with pytest.raises(ValueError):
            CPUCore().run_elementwise(-1, 0)

    def test_executor_requires_attached_mmae(self):
        core = CPUCore()
        with pytest.raises(RuntimeError):
            _ = core.executor


class TestMMU:
    def test_translate_requires_registered_page_table(self):
        mmu = MMU()
        with pytest.raises(KeyError):
            mmu.translate_data(0, 0x1000)

    def test_translate_data_and_instruction_paths(self):
        manager = ProcessManager()
        process = manager.create_process("p")
        base = process.address_space.allocate_region("code+data", 64 * 1024)
        mmu = MMU()
        mmu.register_page_table(process.address_space.page_table)
        data = mmu.translate_data(process.asid, base)
        inst = mmu.translate_instruction(process.asid, base)
        assert data.paddr == inst.paddr
        assert mmu.stats.translations == 2

    def test_prewalk_makes_demand_access_hit(self):
        manager = ProcessManager()
        process = manager.create_process("p")
        base = process.address_space.allocate_region("data", 1 << 20)
        mmu = MMU()
        mmu.register_page_table(process.address_space.page_table)
        mmu.prewalk(process.asid, base + 8192)
        result = mmu.translate_data(process.asid, base + 8192)
        assert result.hit

    def test_unmapped_address_faults(self):
        manager = ProcessManager()
        process = manager.create_process("p")
        mmu = MMU()
        mmu.register_page_table(process.address_space.page_table)
        with pytest.raises(PageFaultError):
            mmu.translate_data(process.asid, 0xFFFF_0000)

    def test_flush_asid_forces_rewalk(self):
        manager = ProcessManager()
        process = manager.create_process("p")
        base = process.address_space.allocate_region("d", 4096)
        mmu = MMU()
        mmu.register_page_table(process.address_space.page_table)
        mmu.translate_data(process.asid, base)
        walks_before = mmu.stats.walks
        mmu.flush_asid(process.asid)
        mmu.translate_data(process.asid, base)
        assert mmu.stats.walks == walks_before + 1


class TestProcessManager:
    def test_asids_are_unique_and_sequential(self):
        manager = ProcessManager()
        processes = [manager.create_process(f"p{i}") for i in range(3)]
        assert [p.asid for p in processes] == [0, 1, 2]

    def test_switch_saves_and_restores_registers(self):
        manager = ProcessManager()
        a = manager.create_process("a")
        b = manager.create_process("b")
        registers = RegisterFile()
        registers.write(1, 111)
        manager.switch_to(b.asid, registers)
        registers.write(1, 222)
        manager.switch_to(a.asid, registers)
        assert registers.read(1) == 111
        manager.switch_to(b.asid, registers)
        assert registers.read(1) == 222

    def test_switch_to_self_is_free(self):
        manager = ProcessManager()
        a = manager.create_process("a")
        assert manager.switch_to(a.asid) == 0

    def test_switch_cost_accumulates(self):
        manager = ProcessManager()
        a = manager.create_process("a")
        b = manager.create_process("b")
        manager.switch_to(b.asid)
        manager.switch_to(a.asid)
        assert manager.total_switch_cycles == 2 * ProcessManager.CONTEXT_SWITCH_CYCLES

    def test_core_switch_process_updates_executor_asid(self):
        core = CPUCore()
        core.processes.create_process("a")
        process_b = core.processes.create_process("b")

        class _NullMMAE:
            def submit_gemm(self, maid, asid, descriptor): ...
            def submit_move(self, maid, asid, descriptor): ...
            def submit_init(self, maid, asid, descriptor): ...
            def submit_stash(self, maid, asid, descriptor): ...

        executor = core.attach_mmae(_NullMMAE())
        core.switch_process(process_b.asid)
        assert executor.asid == process_b.asid
