"""Memory hierarchy substrate: addresses, paging, TLBs, caches, coherence, L3 and DRAM.

The MACO evaluation depends on three memory-system behaviours that this
package models explicitly:

* virtual-to-physical translation (page tables, TLBs, page-table walks) — the
  substrate under the predictive address translation study of Fig. 6;
* the distributed, directory-coherent (MOESI) L3 "system cache" with stash and
  lock operations — the substrate under the GEMM+ mapping scheme of Fig. 5;
* bandwidth/latency of the DDR memory controllers behind the L3.
"""

from repro.mem.address import (
    AddressRange,
    align_down,
    align_up,
    cache_index,
    cache_tag,
    page_number,
    page_offset,
)
from repro.mem.page_table import AddressSpace, FrameAllocator, PageTable, PageTableWalker
from repro.mem.tlb import TLB, TLBEntry, TLBHierarchy
from repro.mem.cache import CacheConfig, CacheStats, SetAssociativeCache
from repro.mem.coherence import CoherenceState, DirectoryController, DirectoryEntry
from repro.mem.l3cache import DistributedL3Cache, L3Slice, StashRequest
from repro.mem.dram import DRAMConfig, DRAMModel

__all__ = [
    "AddressRange",
    "align_down",
    "align_up",
    "cache_index",
    "cache_tag",
    "page_number",
    "page_offset",
    "AddressSpace",
    "FrameAllocator",
    "PageTable",
    "PageTableWalker",
    "TLB",
    "TLBEntry",
    "TLBHierarchy",
    "CacheConfig",
    "CacheStats",
    "SetAssociativeCache",
    "CoherenceState",
    "DirectoryController",
    "DirectoryEntry",
    "DistributedL3Cache",
    "L3Slice",
    "StashRequest",
    "DRAMConfig",
    "DRAMModel",
]
