"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MACOSystem, maco_default_config


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for numerical tests."""
    return np.random.default_rng(seed=1234)


@pytest.fixture
def small_config():
    """A 4-node MACO configuration (fast to build, exercises the multi-node paths)."""
    return maco_default_config(num_nodes=4)


@pytest.fixture
def small_system(small_config) -> MACOSystem:
    """A 4-node MACO system with shared host memory and L3."""
    return MACOSystem(small_config)


@pytest.fixture
def single_node_system() -> MACOSystem:
    """A single-node MACO system for functional MPAIS tests."""
    return MACOSystem(maco_default_config(num_nodes=1))
