"""Fig. 7 — scalability: per-node efficiency for 1/2/4/8/16 compute nodes.

Each active node runs an independent square FP64 GEMM (no inter-node
interaction), exactly as in the paper.  The harness prints one series per node
count over the eleven matrix sizes and asserts the headline claims: the
average per-node efficiency stays around 90% (>= 85% everywhere), efficiency
never increases when nodes are added, and the loss from one to sixteen nodes
is on the order of 10%.
"""

from repro.analysis import (
    efficiency_by_size,
    format_percent,
    render_series,
    summarize_scalability,
)
from repro.core import sweep_scalability
from repro.gemm.workloads import FIG7_MATRIX_SIZES

NODE_COUNTS = [1, 2, 4, 8, 16]


def test_fig7_scalability(benchmark, paper_config):
    sizes = list(FIG7_MATRIX_SIZES)

    def regenerate():
        return sweep_scalability(paper_config, sizes, NODE_COUNTS)

    points = benchmark(regenerate)

    series = {}
    for nodes in NODE_COUNTS:
        by_size = efficiency_by_size(points, active_nodes=nodes)
        label = {1: "Single-core", 2: "Dual-core", 4: "Quad-core", 8: "Octa-core", 16: "Hexadeca-core"}[nodes]
        series[label] = [by_size[s] for s in sizes]
    print("\n" + render_series(
        "matrix size", sizes, series, value_formatter=format_percent,
        title="Fig. 7 - per-node computational efficiency vs active compute nodes (FP64)",
    ))

    summary = summarize_scalability(points)
    for nodes, stats in summary.items():
        print(f"  {nodes:2d} nodes: min {format_percent(stats['min'])} "
              f"mean {format_percent(stats['mean'])} max {format_percent(stats['max'])}")

    # Every configuration sustains ~90% efficiency (the paper's headline claim).
    assert all(stats["min"] >= 0.85 for stats in summary.values())
    # Efficiency never improves with more active nodes (per size).
    for size in sizes:
        per_nodes = [efficiency_by_size(points, active_nodes=n)[size] for n in NODE_COUNTS]
        assert all(b <= a + 1e-9 for a, b in zip(per_nodes, per_nodes[1:]))
    # Loss from single to hexadeca core is in the paper's ~10% ballpark.
    loss = summary[1]["mean"] - summary[16]["mean"]
    assert 0.02 < loss < 0.15
