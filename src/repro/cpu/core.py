"""The general-purpose CPU core of a MACO compute node.

The core bundles the components the reproduction needs: the MPAIS front end
(register file, executor, Master Task Queue), the MMU shared with the MMAE,
the private cache hierarchy of Table I, and throughput models for the FP work
the core executes itself (the CPU-only GEMM baseline and the non-GEMM
operators of GEMM+ workloads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpu.mmu import MMU
from repro.cpu.mtq import MasterTaskQueue
from repro.cpu.pipeline import InstructionMix, PipelineModel
from repro.cpu.process import ProcessManager
from repro.gemm.precision import Precision
from repro.gemm.workloads import GEMMShape
from repro.isa.executor import MMAEPort, MPAISExecutor
from repro.isa.registers import RegisterFile
from repro.mem.cache import CacheConfig, SetAssociativeCache


@dataclass
class CPUComputeResult:
    """Timing result of work executed on the CPU core itself."""

    cycles: float
    seconds: float
    flops: int

    @property
    def gflops(self) -> float:
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0


class CPUCore:
    """One MACO CPU core (paper Table I / Table IV).

    Parameters default to the paper's published values: 2.2 GHz, four-issue
    out-of-order, 8 FP64 FMAC lanes (35.2 GFLOPS FP64 / 71 GFLOPS FP32 peak),
    48 KB L1 caches, 512 KB private L2, 48-entry L1 TLBs and a 1024-entry
    L2 TLB.
    """

    def __init__(
        self,
        core_id: int = 0,
        frequency_hz: float = 2.2e9,
        fmac_lanes: int = 8,
        issue_width: int = 4,
        l1i_size: int = 48 * 1024,
        l1d_size: int = 48 * 1024,
        l1_associativity: int = 4,
        l2_size: int = 512 * 1024,
        l2_associativity: int = 8,
        itlb_entries: int = 48,
        dtlb_entries: int = 48,
        l2_tlb_entries: int = 1024,
        mtq_entries: int = 8,
        memory_bandwidth_bytes_per_s: float = 32e9,
    ) -> None:
        self.core_id = core_id
        self.frequency_hz = frequency_hz
        self.fmac_lanes = fmac_lanes
        self.issue_width = issue_width
        self.memory_bandwidth_bytes_per_s = memory_bandwidth_bytes_per_s

        self.registers = RegisterFile()
        self.mtq = MasterTaskQueue(num_entries=mtq_entries, name=f"cpu{core_id}.mtq")
        self.mmu = MMU(
            itlb_entries=itlb_entries,
            dtlb_entries=dtlb_entries,
            l2_entries=l2_tlb_entries,
        )
        self.pipeline = PipelineModel(issue_width=issue_width)
        self.l1i = SetAssociativeCache(
            CacheConfig(name=f"cpu{core_id}.l1i", size_bytes=l1i_size, associativity=l1_associativity,
                        hit_latency_cycles=3)
        )
        self.l1d = SetAssociativeCache(
            CacheConfig(name=f"cpu{core_id}.l1d", size_bytes=l1d_size, associativity=l1_associativity,
                        hit_latency_cycles=4)
        )
        self.l2 = SetAssociativeCache(
            CacheConfig(name=f"cpu{core_id}.l2", size_bytes=l2_size, associativity=l2_associativity,
                        hit_latency_cycles=12)
        )
        self.processes = ProcessManager()
        self._executor: Optional[MPAISExecutor] = None

    # ------------------------------------------------------------------ MPAIS
    def attach_mmae(self, mmae: MMAEPort) -> MPAISExecutor:
        """Connect the companion MMAE and build the MPAIS executor."""
        self._executor = MPAISExecutor(
            registers=self.registers,
            mtq=self.mtq,
            mmae=mmae,
            asid=self.processes.current_asid if self.processes.current else 0,
        )
        return self._executor

    @property
    def executor(self) -> MPAISExecutor:
        if self._executor is None:
            raise RuntimeError("no MMAE attached to this core; call attach_mmae() first")
        return self._executor

    def switch_process(self, asid: int) -> int:
        """Context-switch the core; the MPAIS executor follows the new ASID."""
        cycles = self.processes.switch_to(asid, self.registers)
        if self._executor is not None:
            self._executor.set_asid(asid)
        return cycles

    # ----------------------------------------------------------------- FP peaks
    def peak_gflops(self, precision: Precision = Precision.FP64) -> float:
        """Theoretical peak (Table IV footnote: 2 x freq x FMACs), scaled by SIMD width.

        The CPU's vector units double their lane count at FP32 relative to FP64
        (35.2 -> 71 GFLOPS in Table IV); FP16 is not a native CPU GEMM type in
        the paper, so it reuses the FP32 rate.
        """
        base = 2.0 * self.frequency_hz * self.fmac_lanes / 1e9
        if precision is Precision.FP64:
            return base
        return base * 2.0

    # ------------------------------------------------------------- CPU-side GEMM
    def gemm_efficiency(self, shape: GEMMShape) -> float:
        """Fraction of peak a cache-blocked CPU GEMM sustains for this shape.

        The model combines a compute-bound ceiling (vector pipelines sustain
        ~70% of peak on well-blocked code) with a bandwidth bound from the
        operand traffic that the L2-blocked loop must move per FLOP.
        """
        compute_ceiling = 0.70
        # Blocked for the private L2: each operand element of the block is
        # reused ~block_size times; traffic per FLOP falls as 1/block.
        element_bytes = shape.precision.bytes_per_element
        block = max(64, min(512, int((self.l2.config.size_bytes / (3 * element_bytes)) ** 0.5)))
        effective_block = min(block, shape.m, shape.n, shape.k)
        bytes_per_flop = 3.0 * element_bytes / (2.0 * effective_block)
        peak_flops = self.peak_gflops(shape.precision) * 1e9
        bandwidth_bound = self.memory_bandwidth_bytes_per_s / bytes_per_flop / peak_flops
        efficiency = min(compute_ceiling, bandwidth_bound)
        # Very small GEMMs lose additional time to loop and call overhead.
        smallest_dim = min(shape.m, shape.n, shape.k)
        if smallest_dim < 128:
            efficiency *= smallest_dim / 128.0
        return max(0.01, min(1.0, efficiency))

    def run_gemm(self, shape: GEMMShape) -> CPUComputeResult:
        """Time a GEMM executed on the CPU core itself (Baseline-1 path)."""
        efficiency = self.gemm_efficiency(shape)
        sustained = self.peak_gflops(shape.precision) * 1e9 * efficiency
        seconds = shape.flops / sustained
        return CPUComputeResult(
            cycles=seconds * self.frequency_hz, seconds=seconds, flops=shape.flops
        )

    # -------------------------------------------------------- non-GEMM operators
    def run_elementwise(self, flops: int, bytes_touched: int) -> CPUComputeResult:
        """Time an element-wise operator (activation / normalisation / softmax).

        These operators are memory-bound on the CPU: the time is the maximum of
        the vector-FP time and the streaming-bandwidth time.
        """
        if flops < 0 or bytes_touched < 0:
            raise ValueError("flops and bytes must be non-negative")
        vector_rate = self.peak_gflops(Precision.FP32) * 1e9 * 0.5
        compute_seconds = flops / vector_rate if vector_rate else 0.0
        memory_seconds = bytes_touched / self.memory_bandwidth_bytes_per_s
        seconds = max(compute_seconds, memory_seconds)
        return CPUComputeResult(
            cycles=seconds * self.frequency_hz, seconds=seconds, flops=flops
        )

    # -------------------------------------------------------------- general code
    def run_instruction_mix(self, mix: InstructionMix) -> CPUComputeResult:
        """Time a general instruction mix through the pipeline model."""
        cycles = self.pipeline.estimate_cycles(mix)
        seconds = cycles / self.frequency_hz
        flops = mix.fp_ops + mix.vector_fp_ops * self.fmac_lanes
        return CPUComputeResult(cycles=cycles, seconds=seconds, flops=flops)
