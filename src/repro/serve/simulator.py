"""Trace-driven discrete-event simulation of a multi-tenant MACO serving fleet.

:class:`ServeSimulator` composes the existing machinery into a serving
scenario: arrivals come from a :class:`~repro.serve.trace.RequestTrace`, a
:class:`~repro.serve.scheduler.BatchingPolicy` orders admission, and every
timing estimate runs through the shared :class:`~repro.core.perf.TimingCache`,
so repeated model shapes are walked once per process.  Tenant interleaving on
a node is charged the :class:`~repro.cpu.process.ProcessManager`
context-switch cost plus an ASID-flush penalty.

Two execution models coexist (``batching=``):

* **request** — the legacy non-preemptive multi-server queue: whenever the
  earliest-free server (a node, or a node group under parallelism) frees up,
  the policy pops one request and the server is busy for the switch cost plus
  the whole analytic service estimate.
* **step** — iteration-level continuous batching: each request is lowered to
  the *steps* of its :class:`~repro.workloads.graph.WorkloadGraph` (one
  prefill step, then one step per decode block), and each server runs a
  *batch* of up to ``max_batch`` resident requests, executing one step per
  member per iteration.  New requests are admitted between iterations when a
  batch slot and enough of the server's paged KV budget (the phases'
  ``state_bytes``) are free; when the resident state outgrows the budget, the
  policy picks a victim to preempt — it keeps its progress, re-enters the
  waiting queue at its original ``(arrival, id)`` position, and pays a
  KV-restore penalty (state bytes over the node's DRAM-bandwidth share) on
  resume.  At ``max_batch=1`` with preemption disabled the step model reduces
  to the request model, and the simulator takes that exact code path so the
  reports agree byte for byte.

With ``autoscale=`` (an :class:`~repro.serve.autoscale.AutoscalePolicy`) the
step loop additionally runs a fleet lifecycle: group servers are committed and
drained by a windowed hysteresis controller, new capacity pays a modeled
provisioning delay before it serves, and the report gains an
:class:`~repro.serve.autoscale.AutoscaleStats` section (fleet-size timeline,
scale events, node-seconds, goodput per node-second).  The per-server KV
budget can also be derived from the hardware instead of hand-picked:
``kv_budget_bytes="auto"`` sizes it as the node's DRAM capacity share minus
the resident (sharded) model weights — see
:func:`~repro.serve.autoscale.derive_kv_budget`.

Two fidelities also coexist (see docs/ARCHITECTURE.md): the event loop itself
uses the analytic timing model — simulating a million-request trace is cheap —
and :meth:`ServeSimulator.functional_smoke` pushes a handful of small GEMMs
through the real MPAIS async path (``MA_CFG``/``MA_READ``/``MA_STATE``) to
prove the dispatch plumbing against the functional machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batch import SweepRunner, _task_cache
from repro.core.config import MACOConfig, maco_default_config
from repro.core.maco import MACOSystem
from repro.core.mapping import partition_gemm, schedule_gemm_plus
from repro.core.perf import (
    TimingCache,
    estimate_node_gemm_cached,
    memory_environment,
    unmapped_memory_environment,
)
from repro.cpu.core import CPUCore
from repro.cpu.process import Process
from repro.gemm.precision import Precision
from repro.mem.dram import DRAMModel
from repro.serve.engine import (
    ENGINE_NAMES,
    NO_DEADLINE,
    TICKS_PER_SECOND,
    EngineTrace,
    segment_bounds,
    shard_plan,
    shard_worker,
    simulate_segments,
)
from repro.serve.autoscale import (
    AutoscalePolicy,
    Autoscaler,
    AutoscaleStats,
    KVBudget,
    ScaleEvent,
    WindowStats,
    derive_kv_budget,
)
from repro.serve.report import (
    NodeStats,
    ServeReport,
    _slo_met,
    build_report,
    build_report_from_columns,
)
from repro.serve.scheduler import BatchingPolicy, scheduler_by_name
from repro.serve.trace import Request, RequestTrace, TenantSpec, TraceColumns

__all__ = [
    "TENANT_SWITCH_FLUSH_CYCLES",
    "DEFAULT_KV_BUDGET_BYTES",
    "StepSpec",
    "ServiceProfile",
    "estimate_phase_service_seconds",
    "estimate_service_seconds",
    "ServeSimulator",
]

#: Extra CPU cycles charged when a node switches tenants, on top of the
#: :class:`~repro.cpu.process.ProcessManager` register save/restore cost:
#: the shootdown of the incoming ASID's stale entries in the 1024-entry
#: shared L2 TLB and the mATLB invalidate (one cycle per entry, conservatively
#: charged in the CPU clock domain).  See DESIGN.md section 7.3.
TENANT_SWITCH_FLUSH_CYCLES = 1024

#: Default per-server budget for resident serving state (the paged KV cache)
#: in step-batching mode: 4 GiB of the node's DDR, a conservative slice that
#: leaves the rest for weights and activations.  This is a serving policy
#: knob; to size the budget from the modeled hardware instead, pass
#: ``kv_budget_bytes="auto"`` (``--kv-budget auto``), which subtracts the
#: resident sharded model weights from the node's share of
#: :attr:`~repro.mem.dram.DRAMConfig.total_capacity_bytes` — see
#: :func:`~repro.serve.autoscale.derive_kv_budget` and DESIGN.md section 8.
DEFAULT_KV_BUDGET_BYTES = 4 << 30


@dataclass(frozen=True)
class StepSpec:
    """One schedulable step of a request: a phase of its workload graph.

    ``seconds`` is the phase's analytic service time on one server of the
    fleet (all ``repeat`` executions), ``stage`` its pipeline stage (0 outside
    pipeline parallelism), ``state_bytes`` the resident state (KV cache) the
    request holds *after* this step — the paged-KV occupancy the step-mode
    event loop charges against the server budget — and ``tokens`` the output
    tokens the step emits (0 for prefill and non-LLM phases).
    """

    name: str
    seconds: float
    stage: int
    state_bytes: int
    tokens: int


@dataclass(frozen=True)
class ServiceProfile:
    """A workload's full service profile on one server of the fleet.

    ``latency_s`` is the end-to-end service time of a request running alone
    (the sum of its step seconds); ``interval_s`` the steady-state occupancy
    it adds to a pipeline-parallel group (the busiest stage's seconds; equal
    to the latency everywhere else); ``steps`` the per-phase breakdown the
    step-mode event loop schedules.
    """

    latency_s: float
    interval_s: float
    steps: Tuple[StepSpec, ...]

    @property
    def total_tokens(self) -> int:
        """Output tokens one request emits (0 for graphs without decode)."""
        return sum(step.tokens for step in self.steps)

    @property
    def peak_state_bytes(self) -> int:
        """Largest resident state any step holds — the feasibility floor."""
        return max(step.state_bytes for step in self.steps)


def estimate_phase_service_seconds(
    config: MACOConfig,
    workload_name: str,
    precision: Precision,
    active_nodes: int,
    cache: Optional[TimingCache] = None,
    parallelism: Optional[str] = None,
    group: Optional[Sequence[int]] = None,
    background: Sequence[Sequence[int]] = (),
) -> List[Tuple[str, float]]:
    """Per-phase analytic service time of one model invocation on one server.

    The request runs alone on its server but shares the memory system with
    the rest of the fleet, so the per-layer GEMM estimates use the
    ``active_nodes``-way contended :func:`~repro.core.perf.memory_environment`
    (the steady-state worst case for a loaded fleet).  Each phase of the
    workload graph is scheduled independently — its GEMM stream on the MMAE,
    its element-wise tail on the node's CPU core, its stash prefetch traffic
    at the node's DRAM bandwidth share, combined through the same
    :func:`~repro.core.mapping.schedule_gemm_plus` overlap model as
    :meth:`~repro.core.maco.MACOSystem.run_workload` — and phases execute in
    order (prefill feeds decode), so the request's service time is the sum.
    A phase times its distinct shapes once and scales by the phase ``repeat``
    count: every decode step after the first reuses the
    :class:`~repro.core.perf.TimingCache` entries of its block.

    With ``parallelism`` (``"tp:4"``-style) the server is a node *group*:
    :func:`repro.parallel.plan_parallel` shards each phase's GEMM stream over
    ``group`` (tensor parallel also divides the element-wise tail and stash
    traffic across the group; a pipeline stage keeps its phases whole), and
    the phase pays its collective-communication seconds — priced on the mesh
    with every ``background`` group's traffic overlaid — on top of the
    overlap schedule.  A ``tp:1`` plan reproduces the single-node estimate
    bit for bit.
    """
    rows, _ = _phase_service_rows(
        config, workload_name, precision, active_nodes, cache=cache,
        parallelism=parallelism, group=group, background=background,
    )
    return [(name, seconds) for name, seconds, _, _ in rows]


def _phase_service_rows(
    config: MACOConfig,
    workload_name: str,
    precision: Precision,
    active_nodes: int,
    cache: Optional[TimingCache] = None,
    parallelism: Optional[str] = None,
    group: Optional[Sequence[int]] = None,
    background: Sequence[Sequence[int]] = (),
) -> Tuple[List[Tuple[str, float, int, int]], Optional[str]]:
    """``(phase name, seconds, pipeline stage, sharers)`` rows plus the strategy.

    The implementation behind :func:`estimate_phase_service_seconds`; the
    stage index (0 outside pipeline parallelism) lets the simulator compute
    the group's steady-state pipeline interval, and ``sharers`` — the nodes a
    phase is sharded over — lets it divide the phase's resident state across
    a tensor-parallel group (each node holds its KV shard).
    """
    from repro.workloads.registry import workload_graph_by_name

    graph = workload_graph_by_name(workload_name, precision)
    env = memory_environment(config, active_nodes)
    if not config.mapping_scheme_enabled:
        env = unmapped_memory_environment(env)
    cpu_cfg = config.cpu
    core = CPUCore(
        frequency_hz=cpu_cfg.frequency_hz,
        fmac_lanes=cpu_cfg.fmac_lanes,
        issue_width=cpu_cfg.issue_width,
        memory_bandwidth_bytes_per_s=cpu_cfg.memory_bandwidth_bytes_per_s,
    )
    dram = DRAMModel(config=config.memory.dram)
    stash_bandwidth = dram.effective_bandwidth(active_nodes) / active_nodes

    plan = None
    if parallelism is not None:
        from repro.parallel import plan_parallel

        plan = plan_parallel(
            graph, config, parallelism, group=group, env=env, cache=cache,
            background=background,
        )

    results: List[Tuple[str, float, int, int]] = []
    for index, phase in enumerate(graph.phases):
        stash_bytes = 0
        for shape in phase.shapes:
            stash_bytes += partition_gemm(shape, 1).stash_bytes
        stash_bytes *= phase.repeat
        comm_seconds = 0.0
        if plan is None:
            gemm_seconds = sum(
                estimate_node_gemm_cached(
                    config, shape, active_nodes=active_nodes, env=env, cache=cache,
                ).seconds
                for shape in phase.shapes
            ) * phase.repeat
            sharers = 1
        else:
            phase_plan = plan.phases[index]
            gemm_seconds = phase_plan.compute_seconds
            # Only the exposed slice of the collectives lands on the service
            # time — tp2d's pipelined broadcasts already ran under compute.
            comm_seconds = phase_plan.comm_exposed_seconds
            # Tensor parallelism shards the tail and stash across the group;
            # a pipeline stage runs its phases whole on one node.
            sharers = len(phase_plan.nodes)
        cpu_seconds = core.run_elementwise(
            phase.non_gemm_flops * phase.repeat, phase.non_gemm_bytes * phase.repeat
        ).seconds / sharers
        schedule = schedule_gemm_plus(
            mmae_seconds=gemm_seconds,
            cpu_seconds=cpu_seconds,
            stash_seconds=stash_bytes / sharers / stash_bandwidth,
            mapping_enabled=config.mapping_scheme_enabled,
        )
        stage = plan.phases[index].stage if plan is not None else 0
        results.append((phase.name, schedule.total_seconds + comm_seconds, stage, sharers))
    return results, (plan.strategy if plan is not None else None)


def estimate_service_seconds(
    config: MACOConfig,
    workload_name: str,
    precision: Precision,
    active_nodes: int,
    cache: Optional[TimingCache] = None,
    parallelism: Optional[str] = None,
    group: Optional[Sequence[int]] = None,
    background: Sequence[Sequence[int]] = (),
) -> float:
    """Analytic service time of one model invocation on one server.

    The sum of the per-phase estimates — see
    :func:`estimate_phase_service_seconds` for the contention, overlap and
    sharding models.  For single-phase graphs (``bert``, ``gpt3``) this
    reduces to the flat GEMM-stream estimate of the whole workload;
    multi-phase graphs (``resnet50`` is now one phase per conv stage, LLM
    graphs one per prefill/decode block) schedule each phase's GEMM/CPU/stash
    overlap independently, so their estimates are slightly more conservative
    than the old whole-network overlap (phase boundaries are barriers).
    """
    return sum(
        seconds
        for _, seconds in estimate_phase_service_seconds(
            config, workload_name, precision, active_nodes, cache=cache,
            parallelism=parallelism, group=group, background=background,
        )
    )


def _service_profile(
    config: MACOConfig,
    workload_name: str,
    precision: Precision,
    active_nodes: int,
    cache: Optional[TimingCache] = None,
    parallelism: Optional[str] = None,
    group: Optional[Sequence[int]] = None,
    background: Sequence[Sequence[int]] = (),
) -> ServiceProfile:
    """Build the :class:`ServiceProfile` of one workload on one server.

    ``latency_s`` is the end-to-end service time a request observes.
    ``interval_s`` is the steady-state occupancy the request adds to its
    server: for pipeline parallelism the busiest stage's seconds —
    back-to-back same-tenant requests overlap across stages, so the group
    admits the next request one interval after the last — and simply the
    latency everywhere else.  ``steps`` carries the per-phase timing plus the
    resident-state and token metadata from the workload graph; a
    tensor-parallel group holds each phase's state sharded ``sharers`` ways.
    """
    from repro.workloads.registry import workload_graph_by_name

    rows, strategy = _phase_service_rows(
        config, workload_name, precision, active_nodes, cache=cache,
        parallelism=parallelism, group=group, background=background,
    )
    graph = workload_graph_by_name(workload_name, precision)
    steps = tuple(
        StepSpec(
            name=name,
            seconds=seconds,
            stage=stage,
            state_bytes=phase.state_bytes // sharers,
            tokens=phase.tokens,
        )
        for (name, seconds, stage, sharers), phase in zip(rows, graph.phases)
    )
    latency = sum(seconds for _, seconds, _, _ in rows)
    if strategy != "pp":
        return ServiceProfile(latency_s=latency, interval_s=latency, steps=steps)
    per_stage: Dict[int, float] = {}
    for _, seconds, stage, _ in rows:
        per_stage[stage] = per_stage.get(stage, 0.0) + seconds
    return ServiceProfile(latency_s=latency, interval_s=max(per_stage.values()), steps=steps)


def _service_worker(payload) -> ServiceProfile:
    """Pool worker: estimate one server's :class:`ServiceProfile` for a workload."""
    (config, workload_name, precision, active_nodes,
     parallelism, group, background), cache = payload
    return _service_profile(
        config, workload_name, precision, active_nodes, cache=_task_cache(cache),
        parallelism=parallelism, group=group, background=background,
    )


@dataclass(slots=True)
class _NodeState:
    """Mutable per-server bookkeeping for the event loops.

    Request mode: ``free_at`` is when the server can *admit* its next request;
    ``drain_at`` is when its last request actually finishes.  They coincide
    except on a pipeline-parallel group, which admits a same-tenant request
    one pipeline interval after the last while earlier requests drain through
    the stages.

    Step mode: ``free_at`` is the server's iteration clock — the instant its
    next batch iteration starts — and ``batch`` holds the resident requests.

    The lifecycle fields only move under autoscaling: ``committed`` says the
    group currently occupies its nodes (serving, provisioning or draining —
    it accrues node-seconds), ``draining`` that it stopped admitting and
    stops once its residents finish, ``serving_since`` when its current
    commitment began, and ``pending_stop`` the in-flight scale-in event whose
    ``stopped_s`` is filled when the drain completes.  A fixed fleet keeps
    every server committed, so the event loop's float arithmetic is
    unchanged.
    """

    node_id: int
    free_at: float = 0.0
    drain_at: float = 0.0
    busy_s: float = 0.0
    switch_s: float = 0.0
    completed: int = 0
    tenant_switches: int = 0
    preemptions: int = 0
    last_tenant: Optional[str] = None
    batch: List["_RunningRequest"] = field(default_factory=list)
    committed: bool = True
    draining: bool = False
    serving_since: float = 0.0
    pending_stop: Optional[dict] = None


@dataclass(slots=True)
class _RunningRequest:
    """A request's mutable progress through its steps (step mode only)."""

    request: Request
    profile: ServiceProfile
    step_index: int = 0
    start_s: Optional[float] = None  # first admission into a batch
    first_token_s: Optional[float] = None  # completion of the first step
    switch_s: float = 0.0
    preemptions: int = 0
    restore_pending: bool = False  # pay the KV-restore penalty on the next step

    @property
    def next_state_bytes(self) -> int:
        """Resident state this request holds after its next step."""
        return self.profile.steps[self.step_index].state_bytes


class ServeSimulator:
    """Simulates a request trace against a MACO fleet under a batching policy.

    ``scheduler`` is a policy name (see
    :data:`~repro.serve.scheduler.SCHEDULER_NAMES`); ``jobs`` fans the
    per-workload service estimation out over a
    :class:`~repro.core.batch.SweepRunner` pool (the event loop itself is
    always serial and deterministic, so the report is bit-identical for every
    ``jobs`` setting).

    ``batching`` selects the execution model (see the module docstring):
    ``"request"`` runs the legacy whole-request dispatch, ``"step"`` the
    iteration-level continuous-batching loop with up to ``max_batch``
    resident requests per server, a paged-KV budget of ``kv_budget_bytes``
    per server (``None`` means :data:`DEFAULT_KV_BUDGET_BYTES`;
    ``float("inf")`` disables the budget; ``"auto"`` derives it from the DRAM
    capacity model at run time — see :meth:`resolved_kv_budget`), and —
    unless ``preemption`` is off — policy-selected eviction when the
    resident state outgrows it.

    ``autoscale`` (an :class:`~repro.serve.autoscale.AutoscalePolicy`;
    step batching only) turns the fixed fleet into an elastic one: the run
    starts with ``min_groups`` committed group servers and a windowed
    hysteresis controller commits or drains groups against queue-depth and
    SLO-attainment pressure, within ``[min_groups, max_groups]``.  With
    ``min_groups == max_groups`` the controller can never act and the report
    matches the fixed-fleet run byte for byte apart from its ``autoscale``
    section.

    ``parallelism`` (``"tp:4"``-style, see :mod:`repro.parallel`) shards
    every request across a node *group* instead of serving it on one node:
    the fleet becomes ``num_nodes / degree`` group servers, each request's
    service time reflects sharded execution plus collective communication,
    and the collectives of co-scheduled groups contend for shared mesh links
    (every other group is priced as background traffic — the steady-state
    worst case, consistent with the memory-environment model).  A
    pipeline-parallel group overlaps back-to-back same-tenant requests
    across its stages: in request mode it admits the next request one
    pipeline interval after the last, and in step mode batch members in
    different stages advance concurrently within an iteration.  A
    tensor-parallel group holds each request's KV state sharded across its
    nodes, so the budget check sees the per-node share.  ``tp:1`` reproduces
    the unsharded simulation bit for bit.
    """

    def __init__(
        self,
        system: Optional[MACOSystem] = None,
        config: Optional[MACOConfig] = None,
        scheduler: str = "fcfs",
        jobs: Optional[int] = None,
        cache: Optional[TimingCache] = None,
        parallelism: Optional[str] = None,
        batching: str = "request",
        max_batch: int = 8,
        kv_budget_bytes: Optional[object] = None,
        preemption: bool = True,
        engine: str = "array",
        autoscale: Optional[AutoscalePolicy] = None,
    ) -> None:
        if system is not None and config is not None:
            raise ValueError("pass either a system or a config, not both")
        if batching not in ("request", "step"):
            raise ValueError(f"batching must be 'request' or 'step', got {batching!r}")
        if engine not in ENGINE_NAMES:
            raise ValueError(
                f"engine must be one of {', '.join(ENGINE_NAMES)}, got {engine!r}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if kv_budget_bytes is None:
            self._kv_budget_source = "default"
            kv_budget_bytes = DEFAULT_KV_BUDGET_BYTES
        elif isinstance(kv_budget_bytes, str):
            if kv_budget_bytes != "auto":
                raise ValueError(
                    f"kv_budget_bytes must be a byte count or 'auto', "
                    f"got {kv_budget_bytes!r}")
            self._kv_budget_source = "auto"
        else:
            if not kv_budget_bytes > 0:
                raise ValueError(f"kv_budget_bytes must be positive, got {kv_budget_bytes}")
            self._kv_budget_source = "explicit"
        if autoscale is not None and batching != "step":
            raise ValueError(
                "autoscale needs batching='step'; the fleet lifecycle lives in "
                "the step-batching event loop")
        if system is None:
            system = MACOSystem(config if config is not None else maco_default_config())
        self.system = system
        self.scheduler_name = scheduler
        self.engine = engine
        self.batching = batching
        self.max_batch = max_batch
        self.kv_budget_bytes = kv_budget_bytes
        self.preemption = preemption
        self.runner = SweepRunner(jobs=jobs if jobs is not None else 1, cache=cache)
        if parallelism is None:
            self.parallelism = None
            self.groups = [(node,) for node in range(self.system.num_nodes)]
        else:
            from repro.parallel import ParallelismSpec, node_groups

            spec = ParallelismSpec.parse(parallelism)
            self.parallelism = str(spec)
            self.groups = node_groups(self.system.num_nodes, spec.degree)
        if autoscale is not None and autoscale.max_groups > len(self.groups):
            raise ValueError(
                f"autoscale max_groups ({autoscale.max_groups}) exceeds the "
                f"fleet's {len(self.groups)} group server(s)")
        self.autoscale = autoscale
        #: ``(admit_time_s, group_server_id)`` per step-mode admission of the
        #: most recent run, plus each drain's ``(group_server_id, start, stop)``
        #: slice into that log — diagnostics for the invariant checks
        #: (windows tick lazily, so loop order, not timestamps, scopes a
        #: drain), never part of the report.
        self.last_admissions: List[Tuple[float, int]] = []
        self.last_drains: List[Tuple[int, int, int]] = []
        self._services: Dict[Tuple[str, Precision, int], ServiceProfile] = {}
        # One serving process per (node, tenant): created lazily through the
        # node CPU's ProcessManager so ASIDs and switch accounting are real.
        self._tenant_processes: List[Dict[str, Process]] = [
            {} for _ in range(self.system.num_nodes)
        ]

    @property
    def num_servers(self) -> int:
        """Dispatchable servers: node groups under parallelism, else nodes."""
        return len(self.groups)

    def _background(self, server: int) -> Tuple[Tuple[int, ...], ...]:
        """The other groups, whose collective traffic shares mesh links with ours."""
        if self.parallelism is None:
            return ()
        return tuple(group for index, group in enumerate(self.groups) if index != server)

    # ------------------------------------------------------------ service times
    def service_seconds(
        self,
        workload_name: str,
        precision: Precision = Precision.FP32,
        server: int = 0,
    ) -> float:
        """Memoised per-request service time on one server of this fleet.

        Under parallelism the estimate depends on the group's mesh position
        (its ring shares different links with the background groups), so
        ``server`` selects the group; without parallelism every node is
        identical and the argument is ignored.
        """
        return self.service_profile(workload_name, precision, server).latency_s

    def service_profile(
        self, workload_name: str, precision: Precision = Precision.FP32, server: int = 0
    ) -> ServiceProfile:
        """Memoised :class:`ServiceProfile` of one workload on one server."""
        if self.parallelism is None:
            server = 0
        key = (workload_name, precision, server)
        if key not in self._services:
            self._services[key] = _service_profile(
                self.system.config, workload_name, precision,
                active_nodes=self.system.num_nodes, cache=self.runner.cache,
                parallelism=self.parallelism,
                group=self.groups[server] if self.parallelism is not None else None,
                background=self._background(server),
            )
        return self._services[key]

    def _service_pair(
        self, workload_name: str, precision: Precision = Precision.FP32, server: int = 0
    ) -> Tuple[float, float]:
        """(latency, admission interval) of one workload on one server.

        The interval is below the latency exactly when a pipeline-parallel
        group can overlap back-to-back same-tenant requests.
        """
        profile = self.service_profile(workload_name, precision, server)
        return profile.latency_s, profile.interval_s

    def phase_profile(
        self, workload_name: str, precision: Precision = Precision.FP32, server: int = 0
    ) -> List[Tuple[str, float]]:
        """Per-phase service seconds of one workload on this fleet.

        The breakdown that :meth:`service_seconds` sums — useful to see why a
        decode-heavy request behaves differently from a prefill-heavy one.
        """
        profile = self.service_profile(workload_name, precision, server)
        return [(step.name, step.seconds) for step in profile.steps]

    def _ensure_services(self, pairs: Sequence[Tuple[str, Precision]]) -> None:
        """Estimate the given (workload, precision) pairs, fanning out over the runner's pool.

        Under parallelism each pair is estimated once per group server (the
        mesh position changes the communication cost); otherwise once.
        """
        ordered = sorted(set(pairs), key=lambda pair: (pair[0], pair[1].name))
        servers = range(self.num_servers) if self.parallelism is not None else (0,)
        missing = [
            (workload, precision, server)
            for workload, precision in ordered
            for server in servers
            if (workload, precision, server) not in self._services
        ]
        if not missing:
            return
        tasks = [
            (self.system.config, workload, precision, self.system.num_nodes,
             self.parallelism,
             self.groups[server] if self.parallelism is not None else None,
             self._background(server))
            for workload, precision, server in missing
        ]
        for key, profile in zip(missing, self.runner.map(_service_worker, tasks)):
            self._services[key] = profile

    def _prepare_services(self, trace: RequestTrace) -> None:
        """Estimate every distinct (workload, precision) in the trace, possibly in parallel.

        Works off the columnar view — the distinct pairs fall out of one
        ``np.unique`` over the interned id columns, so a million-request
        trace costs one array pass, not a million attribute reads.
        """
        columns = trace.columns
        if not len(columns):
            return
        width = max(len(columns.precisions), 1)
        # The code space is tiny (workloads x precisions), so a bincount
        # beats hashing a million-element array through np.unique.
        counts = np.bincount(
            columns.workload_id.astype(np.int64) * width + columns.precision_id,
            minlength=len(columns.workloads) * width)
        codes = np.flatnonzero(counts)
        self._ensure_services([
            (columns.workloads[int(code) // width], columns.precisions[int(code) % width])
            for code in codes
        ])

    def suggest_rates(
        self,
        specs: Sequence[TenantSpec],
        utilization: float = 0.7,
        precision: Precision = Precision.FP32,
    ) -> List[TenantSpec]:
        """Size each tenant's arrival rate so the fleet runs at ``utilization``.

        Each tenant gets an equal share of the fleet's service capacity:
        ``rate = utilization * nodes / (tenants * mean service seconds)``,
        where the mean service time is weighted by the tenant's workload mix.
        Utilizations above 1 deliberately overload the fleet — the regime
        where continuous batching, preemption and SLO-aware admission earn
        their keep.
        """
        if not 0 < utilization:
            raise ValueError(f"utilization must be positive, got {utilization}")
        # Batch the estimates through the worker pool so --jobs helps here too
        # (this is where a cold simulator computes them in the default CLI path).
        self._ensure_services([
            (workload, precision)
            for spec in specs
            for workload, _ in spec.mean_mix_weights()
        ])
        sized = []
        for spec in specs:
            mean_service = sum(
                weight * self.service_seconds(workload, precision)
                for workload, weight in spec.mean_mix_weights()
            )
            rate = utilization * self.system.num_nodes / (len(specs) * mean_service)
            sized.append(spec.with_rate(rate))
        return sized

    # ------------------------------------------------------- context switching
    def _switch_seconds(self, state: _NodeState, tenant: str) -> float:
        """Charge (and account) the cost of putting ``tenant`` on the server.

        The first tenant a server ever serves is adopted for free (it was
        idle); after that, a tenant change costs the ProcessManager's register
        save/restore plus the ASID flush penalty, both in the CPU clock
        domain.  A node group switches all its nodes concurrently, so the
        group pays one switch cost; the lead node's ProcessManager keeps the
        ASID bookkeeping real.
        """
        lead = self.groups[state.node_id][0]
        node = self.system.node(lead)
        manager = node.cpu.processes
        processes = self._tenant_processes[lead]
        if tenant not in processes:
            processes[tenant] = manager.create_process(f"serve:{tenant}")
        process = processes[tenant]
        if state.last_tenant is None:
            manager.current = process
            return 0.0
        if state.last_tenant == tenant:
            return 0.0
        cycles = manager.switch_to(process.asid) + TENANT_SWITCH_FLUSH_CYCLES
        state.tenant_switches += 1
        return cycles / node.cpu.frequency_hz

    # ------------------------------------------------------------- event loop
    def run(self, trace: RequestTrace, shards: Optional[int] = None) -> ServeReport:
        """Simulate the trace to completion and return the aggregated report.

        Dispatches on ``batching`` (see the class docstring).  A step-mode
        simulator with ``max_batch=1`` and preemption disabled is semantically
        the request-level queue — one resident request per server, steps
        back-to-back — so it takes the request-level path and reproduces the
        legacy report byte for byte (modulo the ``batching`` label).  All
        tie-breaks in both loops are deterministic, so identical traces yield
        bit-identical reports.

        ``shards`` cuts the trace at full-idle points and simulates the
        resulting segments independently.  On the request-level path the cut
        points are provable idle instants and the segments fan out over the
        runner's worker pool; on the step-batching path the cuts come from a
        conservative serial-drain bound (see :meth:`_step_segment_bounds`)
        and the segments run serially — the loop is float-valued, so merging
        is only exact when every segment starts cold.  In both cases each
        segment restarts with a cold fleet and the cut points depend only on
        the trace — never on the shard count — so the report is
        byte-identical for every ``shards >= 1`` and every ``jobs`` setting.
        ``shards=None`` (the default) runs the trace unsegmented: the exact
        legacy continuous semantics, where an idle gap keeps the last tenant
        resident.
        """
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if self.batching == "request" or (
            self.max_batch == 1 and not self.preemption and self.autoscale is None
        ):
            return self._run_request_level(trace, shards)
        return self._run_step_level(trace, shards)

    def _engine_trace(self, columns: TraceColumns) -> Tuple[EngineTrace, Optional[np.ndarray]]:
        """Lower a columnar trace to the engine's tick arrays.

        Returns the :class:`~repro.serve.engine.EngineTrace` plus the
        canonical order (``(arrival tick, request id)`` lexsort) that maps
        trace rows to engine ranks — ``None`` when the columns are already
        canonical (every generator and replay emits them that way), so the
        common case skips the sort and all the re-index gathers.  Service
        times come from the memoised profiles as *ceiling* nanosecond ticks —
        a request is never reported faster than its float estimate — batched
        into one ``(pair, server)`` table so the event loops do array lookups
        instead of dict probes.
        """
        arrival_all = np.rint(columns.arrival_s * TICKS_PER_SECOND).astype(np.int64)
        canonical = bool(np.all(
            (arrival_all[1:] > arrival_all[:-1])
            | ((arrival_all[1:] == arrival_all[:-1])
               & (columns.request_id[1:] > columns.request_id[:-1]))
        )) if len(arrival_all) > 1 else True
        if canonical:
            order: Optional[np.ndarray] = None
            arrival = arrival_all
        else:
            order = np.lexsort((columns.request_id, arrival_all))
            arrival = arrival_all[order]
        width = max(len(columns.precisions), 1)
        codes_all = columns.workload_id.astype(np.int64) * width + columns.precision_id
        if order is not None:
            codes_all = codes_all[order]
        # Equivalent to np.unique(codes_all, return_inverse=True) but via a
        # bincount over the tiny (workload x precision) code space.
        counts = np.bincount(codes_all, minlength=len(columns.workloads) * width)
        codes = np.flatnonzero(counts)
        remap = np.zeros(len(counts), np.int64)
        remap[codes] = np.arange(len(codes), dtype=np.int64)
        pair = remap[codes_all]
        servers = self.num_servers
        latency_table = np.empty((len(codes), servers), np.int64)
        interval_table = np.empty((len(codes), servers), np.int64)
        first_table = np.empty((len(codes), servers), np.int64)
        tokens_table = np.empty(len(codes), np.int64)
        for row, code in enumerate(codes.tolist()):
            workload = columns.workloads[code // width]
            precision = columns.precisions[code % width]
            for server in range(servers):
                profile = self.service_profile(workload, precision, server)
                latency_table[row, server] = math.ceil(
                    profile.latency_s * TICKS_PER_SECOND)
                interval_table[row, server] = math.ceil(
                    profile.interval_s * TICKS_PER_SECOND)
                first_table[row, server] = math.ceil(
                    profile.steps[0].seconds * TICKS_PER_SECOND)
            tokens_table[row] = self.service_profile(workload, precision, 0).total_tokens
        # The policy-key columns are pre-expanded only for the policies that
        # consume them on every push; fcfs/rr never read them.
        empty = np.empty(0, np.int64)
        policy = self.scheduler_name
        svc0 = latency_table[:, 0][pair] if policy == "sjf" else empty
        if policy in ("priority", "slo"):
            priority = (columns.priority if order is None
                        else columns.priority[order]).astype(np.int64)
        else:
            priority = empty
        if policy == "slo":
            ttft_slo = columns.ttft_slo_s if order is None else columns.ttft_slo_s[order]
            deadline = np.full(len(arrival), NO_DEADLINE, np.int64)
            with_deadline = ~np.isnan(ttft_slo)
            deadline[with_deadline] = arrival[with_deadline] + np.ceil(
                ttft_slo[with_deadline] * TICKS_PER_SECOND).astype(np.int64)
        else:
            deadline = empty
        node = self.system.node(self.groups[0][0])
        switch_cycles = (node.cpu.processes.CONTEXT_SWITCH_CYCLES
                        + TENANT_SWITCH_FLUSH_CYCLES)
        return EngineTrace(
            policy=policy,
            num_servers=servers,
            switch_ticks=math.ceil(
                switch_cycles / node.cpu.frequency_hz * TICKS_PER_SECOND),
            arrival=arrival,
            tenant=columns.tenant_id if order is None else columns.tenant_id[order],
            pair=pair.astype(np.int32),
            latency_table=latency_table,
            interval_table=interval_table,
            first_table=first_table,
            tokens_table=tokens_table,
            svc0=svc0,
            priority=priority,
            deadline=deadline,
            uniform_interval=bool(np.array_equal(latency_table, interval_table)),
        ), order

    def _run_request_level(
        self, trace: RequestTrace, shards: Optional[int] = None
    ) -> ServeReport:
        """The non-preemptive multi-server queue, on the tick engines.

        Whenever the earliest-free server (a node, or a node group under
        parallelism) frees up, every request that has arrived by then is
        admitted to the policy queue, the policy pops one, and the server is
        busy for the switch cost plus the service estimate — see
        :mod:`repro.serve.engine` for the array/scalar implementations and
        the sharding contract.
        """
        self._prepare_services(trace)
        # Reuse the scheduler registry's validation (exact same errors for a
        # bad policy name); the engines carry their own queue implementations.
        scheduler_by_name(self.scheduler_name, estimator=lambda request: 0.0)
        columns = trace.columns
        et, order = self._engine_trace(columns)
        count = len(et)
        if shards is None:
            chunks = [[(0, count)]] if count else []
        else:
            chunks = shard_plan(segment_bounds(et), shards)
        if len(chunks) > 1 and self.runner.jobs > 1:
            results = self.runner.map(
                shard_worker, [(et, chunk, self.engine) for chunk in chunks])
        else:
            results = [simulate_segments(et, chunk, self.engine) for chunk in chunks]
        if len(results) == 1:
            start, first, finish, accumulators = results[0]
        else:
            start = np.empty(count, np.int64)
            first = np.empty(count, np.int64)
            finish = np.empty(count, np.int64)
            accumulators = np.zeros((self.num_servers, 4), np.int64)
            for chunk, (seg_start, seg_first, seg_finish, seg_acc) in zip(chunks, results):
                lo, hi = chunk[0][0], chunk[-1][1]
                start[lo:hi] = seg_start
                first[lo:hi] = seg_first
                finish[lo:hi] = seg_finish
                accumulators += seg_acc
        return build_report_from_columns(
            trace_name=trace.name,
            scheduler_name=self.scheduler_name,
            num_nodes=self.system.num_nodes,
            tenant_names=columns.tenants,
            tenant_id=columns.tenant_id if order is None else columns.tenant_id[order],
            arrival_ticks=et.arrival,
            start_ticks=start,
            first_ticks=first,
            finish_ticks=finish,
            tokens=et.tokens_table[et.pair],
            ttft_slo_s=columns.ttft_slo_s if order is None else columns.ttft_slo_s[order],
            tpot_slo_s=columns.tpot_slo_s if order is None else columns.tpot_slo_s[order],
            node_accumulators=accumulators,
            batching=self.batching,
        )

    def resolved_kv_budget(self, trace: RequestTrace) -> KVBudget:
        """The per-server KV budget the step loop will enforce, with provenance.

        ``"auto"`` budgets resolve against the trace (the resident weights
        depend on which workloads it serves): the node's DRAM capacity share
        minus the largest sharded weight share among the trace's distinct
        ``(workload, precision)`` pairs — see
        :func:`~repro.serve.autoscale.derive_kv_budget`.  Default and
        explicit budgets pass through unchanged.
        """
        if self._kv_budget_source != "auto":
            return KVBudget(
                budget_bytes=float(self.kv_budget_bytes),
                source=self._kv_budget_source)
        pairs = sorted(
            {(request.workload, request.precision) for request in trace},
            key=lambda pair: (pair[0], pair[1].name))
        if not pairs:
            return KVBudget(budget_bytes=float(DEFAULT_KV_BUDGET_BYTES), source="auto")
        return derive_kv_budget(
            self.system.config, pairs,
            sharers=len(self.groups[0]), num_nodes=self.system.num_nodes)

    def _step_segment_bounds(
        self, arrivals: List[Request], restore_bandwidth: float
    ) -> List[int]:
        """Cut indices where the step-batching fleet is certainly idle.

        A conservative serial-drain bound, the step-mode analogue of
        :func:`repro.serve.engine.segment_bounds`: charge every request its
        worst-case solo cost on the slowest server — full latency, a tenant
        switch, one KV restore of its peak state — and drain the trace one
        request at a time (``bound = max(bound, arrival) + worst``).  Where
        the bound dies out before the next arrival the fleet must be idle, so
        the trace can be cut there.  The bound assumes at most one restore
        per request, so it is a heuristic under heavy preemption churn; what
        the sharding contract guarantees is determinism, not equivalence to
        the continuous run — the cut set is a pure function of the trace,
        never of the shard count, so the merged report is byte-identical for
        every ``shards >= 1``.
        """
        pairs = sorted(
            {(request.workload, request.precision) for request in arrivals},
            key=lambda pair: (pair[0], pair[1].name))
        servers = range(self.num_servers) if self.parallelism is not None else (0,)
        worst = 0.0
        for workload, precision in pairs:
            for server in servers:
                profile = self.service_profile(workload, precision, server)
                worst = max(
                    worst,
                    profile.latency_s + profile.peak_state_bytes / restore_bandwidth)
        node = self.system.node(self.groups[0][0])
        worst += (
            node.cpu.processes.CONTEXT_SWITCH_CYCLES + TENANT_SWITCH_FLUSH_CYCLES
        ) / node.cpu.frequency_hz
        cuts: List[int] = []
        bound = -math.inf
        for position, request in enumerate(arrivals):
            if position and bound < request.arrival_s:
                cuts.append(position)
            bound = max(bound, request.arrival_s) + worst
        return cuts

    def _run_step_level(
        self, trace: RequestTrace, shards: Optional[int] = None
    ) -> ServeReport:
        """Iteration-level continuous batching with KV paging and preemption.

        Each server holds a running batch of up to ``max_batch`` requests and
        advances in *iterations*: one step per member, members executed in
        ``(arrival, id)`` order with per-pipeline-stage local clocks (stages
        overlap; within a stage steps serialise).  Between iterations the
        server admits waiting requests in policy order — head-of-line only,
        so admission order is exactly the policy order — as long as a batch
        slot is free, the candidate has arrived by the server's clock, and
        its resident state fits the KV budget next to the current members'.
        When members' growing KV outruns the budget, the policy picks victims
        to preempt until the batch fits again; a victim keeps its step
        progress, re-enters the waiting queue at its original ``(arrival,
        id)`` position, and pays a restore penalty (its state bytes over the
        node's DRAM-bandwidth share) on its next step.  With ``preemption``
        off the budget still gates admission but resident requests are never
        evicted.  Every choice ties-breaks on ``(arrival, id)``, so the loop
        is deterministic.

        ``shards`` cuts the trace at conservative full-idle points
        (:meth:`_step_segment_bounds`) and runs every segment cold, so the
        report is byte-identical for each shard count; ``shards=None`` keeps
        the exact continuous semantics.  Under ``autoscale`` each segment
        starts back at ``min_groups`` committed groups with a fresh
        controller, and the report's
        :class:`~repro.serve.autoscale.AutoscaleStats` concatenates the
        per-segment scale events and fleet-timeline entries.
        """
        self._prepare_services(trace)
        # Diagnostic only (never part of the report): every step-mode
        # admission as ``(admit_time_s, group_server_id)`` and every drain's
        # slice of that log, so the fuzz layer can assert that draining
        # groups admit nothing.
        self.last_admissions = []
        self.last_drains = []
        policy: BatchingPolicy = scheduler_by_name(
            self.scheduler_name,
            estimator=lambda request: self.service_seconds(request.workload, request.precision),
        )
        kv = self.resolved_kv_budget(trace)
        budget = kv.budget_bytes
        servers = range(self.num_servers) if self.parallelism is not None else (0,)
        for workload, precision in sorted(
            {(request.workload, request.precision) for request in trace},
            key=lambda pair: (pair[0], pair[1].name),
        ):
            for server in servers:
                peak = self.service_profile(workload, precision, server).peak_state_bytes
                if peak > budget:
                    if kv.source == "auto":
                        raise ValueError(
                            f"workload {workload!r} needs {peak / 1e6:.1f} MB of "
                            f"resident state but the per-server KV budget is "
                            f"{kv.describe()}; widen the parallelism group or "
                            "grow DRAMConfig.channel_capacity_bytes - a request "
                            "must fit alone")
                    raise ValueError(
                        f"workload {workload!r} needs {peak / 1e6:.1f} MB of resident state "
                        f"but the per-server KV budget is {budget / 1e6:.1f} MB; "
                        "raise kv_budget_bytes - a request must fit alone")
        dram = DRAMModel(config=self.system.config.memory.dram)
        restore_bandwidth = (
            dram.effective_bandwidth(self.system.num_nodes) / self.system.num_nodes)

        states = [_NodeState(node_id=index) for index in range(self.num_servers)]
        arrivals: List[Request] = sorted(
            trace.requests, key=lambda request: (request.arrival_s, request.request_id))
        if not arrivals:
            segments: List[List[Request]] = []
        elif shards is None:
            segments = [arrivals]
        else:
            bounds = [0] + self._step_segment_bounds(arrivals, restore_bandwidth)
            bounds.append(len(arrivals))
            segments = [arrivals[lo:hi] for lo, hi in zip(bounds, bounds[1:])]

        runtimes: Dict[int, _RunningRequest] = {}
        completions: List[dict] = []
        tally: Dict[str, float] = {
            "last_event_t": 0.0,
            "depth_area": 0.0,
            "depth_max": 0,
            "group_seconds": 0.0,
        }
        events: List[dict] = []
        timeline: List[Tuple[float, int]] = []
        for segment in segments:
            self._simulate_step_segment(
                segment, policy, states, budget, restore_bandwidth,
                runtimes, completions, tally, events, timeline)

        makespan = max((entry["finish_s"] for entry in completions), default=0.0)
        autoscale_stats = None
        if self.autoscale is not None:
            nodes_per_group = len(self.groups[0])
            node_seconds = tally["group_seconds"] * nodes_per_group
            met = sum(1 for entry in completions if _slo_met(entry))
            autoscale_stats = AutoscaleStats(
                min_groups=self.autoscale.min_groups,
                max_groups=self.autoscale.max_groups,
                nodes_per_group=nodes_per_group,
                provision_delay_s=self.autoscale.provision_delay_s,
                node_seconds=node_seconds,
                goodput_per_node_second=met / node_seconds if node_seconds else 0.0,
                events=tuple(ScaleEvent(**event) for event in events),
                timeline=tuple(timeline),
            )
        return self._build_report(
            trace, states, completions, tally["depth_area"],
            int(tally["depth_max"]), makespan, autoscale=autoscale_stats)

    def _simulate_step_segment(
        self,
        segment: List[Request],
        policy: BatchingPolicy,
        states: List[_NodeState],
        budget: float,
        restore_bandwidth: float,
        runtimes: Dict[int, _RunningRequest],
        completions: List[dict],
        tally: Dict[str, float],
        events: List[dict],
        timeline: List[Tuple[float, int]],
    ) -> None:
        """Run one cold-start segment of the step-batching event loop.

        The fleet starts idle — empty batches, no resident tenants, the
        autoscaled fleet back at ``min_groups`` with a fresh controller.
        Per-node accumulators and ``tally`` (queue-depth area/max, committed
        group-seconds) carry across segments; completions, scale events and
        fleet-timeline entries are appended in place.
        """
        apolicy = self.autoscale
        scaler = Autoscaler(apolicy) if apolicy is not None else None
        seg_start = segment[0].arrival_s
        for state in states:
            state.free_at = 0.0
            state.last_tenant = None
            state.draining = False
            state.pending_stop = None
            state.committed = apolicy is None or state.node_id < apolicy.min_groups
            state.serving_since = seg_start
        seg_changes: List[Tuple[float, int]] = []
        drain_marks: Dict[int, int] = {}
        next_window_end = seg_start + (apolicy.window_s if apolicy is not None else 0.0)
        window_depth_peak = 0
        window_served = 0
        window_misses = 0
        index = 0

        def advance(now: float, extra_queued: int = 0) -> None:
            if now > tally["last_event_t"]:
                tally["depth_area"] += (
                    (len(policy) + extra_queued) * (now - tally["last_event_t"]))
                tally["last_event_t"] = now

        def push(request: Request) -> None:
            nonlocal window_depth_peak
            policy.push(request)
            depth = len(policy)
            if depth > tally["depth_max"]:
                tally["depth_max"] = depth
            if depth > window_depth_peak:
                window_depth_peak = depth

        def stop_group(state: _NodeState, stopped: float, event: dict) -> None:
            # The drained group's capacity merges back into the pool: it
            # stops accruing node-seconds and becomes eligible for a future
            # scale-out (which re-provisions it from scratch).
            event["stopped_s"] = stopped
            tally["group_seconds"] += stopped - state.serving_since
            state.committed = False
            state.draining = False
            state.pending_stop = None
            mark = drain_marks.pop(state.node_id, len(self.last_admissions))
            self.last_drains.append(
                (state.node_id, mark, len(self.last_admissions)))
            seg_changes.append((stopped, -1))

        def tick(now: float) -> None:
            """Evaluate every pressure window that has elapsed by ``now``."""
            nonlocal next_window_end, window_depth_peak, window_served, window_misses
            if scaler is None:
                return
            while next_window_end <= now:
                t = next_window_end
                if len(policy) > window_depth_peak:
                    window_depth_peak = len(policy)
                committed = [s for s in states if s.committed]
                draining = sum(1 for s in committed if s.draining)
                decision = scaler.evaluate(
                    t,
                    WindowStats(
                        queue_depth_peak=window_depth_peak,
                        served=window_served,
                        slo_misses=window_misses),
                    len(committed),
                    draining)
                if decision is not None:
                    direction, reason = decision
                    event = {
                        "time_s": t,
                        "direction": direction,
                        "reason": reason,
                        "groups_before": len(committed),
                        "groups_after": (
                            len(committed) + (1 if direction == "out" else -1)),
                        "queue_depth": window_depth_peak,
                        "group_id": None,
                        "serving_from_s": None,
                        "stopped_s": None,
                    }
                    events.append(event)
                    if direction == "out":
                        target = min(
                            (s for s in states if not s.committed),
                            key=lambda s: s.node_id)
                        target.committed = True
                        target.draining = False
                        # A fresh provision: no resident tenant, and it can
                        # serve only after the provisioning delay.
                        target.last_tenant = None
                        target.free_at = t + apolicy.provision_delay_s
                        target.serving_since = t
                        event["group_id"] = target.node_id
                        event["serving_from_s"] = target.free_at
                        seg_changes.append((t, 1))
                    else:
                        victim = min(
                            (s for s in committed if not s.draining),
                            key=lambda s: (len(s.batch), -s.node_id))
                        event["group_id"] = victim.node_id
                        if victim.batch:
                            victim.draining = True
                            victim.pending_stop = event
                            drain_marks[victim.node_id] = len(self.last_admissions)
                        else:
                            stop_group(victim, max(t, victim.free_at), event)
                window_depth_peak = 0
                window_served = 0
                window_misses = 0
                next_window_end += apolicy.window_s

        while index < len(segment) or len(policy) or any(s.batch for s in states):
            busy = [s for s in states if s.batch]
            if len(policy):
                candidates = [
                    s for s in states if s.batch or (s.committed and not s.draining)]
            elif busy:
                candidates = busy
            else:
                # Globally idle: jump to the next arrival instant (admit ties
                # too) without touching any server clock — the admitting
                # server backdates its clock to the arrival below.  Windows
                # elapsing across the gap still tick, so an idle fleet can
                # scale in.
                now = segment[index].arrival_s
                tick(now)
                while index < len(segment) and segment[index].arrival_s <= now:
                    advance(segment[index].arrival_s)
                    push(segment[index])
                    index += 1
                continue
            state = min(candidates, key=lambda s: (s.free_at, s.node_id))
            tick(state.free_at)
            # Feed the waiting queue with everything that has arrived by this
            # server's clock.
            while index < len(segment) and segment[index].arrival_s <= state.free_at:
                advance(segment[index].arrival_s)
                push(segment[index])
                index += 1
            # --- admission: policy order, head-of-line, between iterations.
            # A draining group stops admitting; its residents run to completion.
            while (not state.draining and len(policy)
                   and len(state.batch) < self.max_batch):
                head = policy.peek()
                if state.batch and head.arrival_s > state.free_at:
                    break  # not yet arrived from this server's perspective
                profile = self.service_profile(
                    head.workload, head.precision, server=state.node_id)
                member = runtimes.get(head.request_id)
                step_index = member.step_index if member is not None else 0
                occupancy = sum(m.next_state_bytes for m in state.batch)
                if state.batch and occupancy + profile.steps[step_index].state_bytes > budget:
                    break  # no room in the KV budget; wait for completions
                request = policy.pop()
                admit_t = max(state.free_at, request.arrival_s)
                self.last_admissions.append((admit_t, state.node_id))
                # The popped request stays logically queued until admission.
                advance(admit_t, extra_queued=1)
                if not state.batch:
                    state.free_at = admit_t
                if member is None:
                    member = _RunningRequest(request=request, profile=profile)
                    runtimes[request.request_id] = member
                else:
                    # A preempted request may resume on a different server;
                    # its step timings come from the server it runs on.
                    member.profile = profile
                if member.start_s is None:
                    member.start_s = state.free_at
                state.batch.append(member)
            if not state.batch:
                continue
            # --- preemption: members' next steps grew past the budget.
            if self.preemption:
                while (len(state.batch) > 1
                       and sum(m.next_state_bytes for m in state.batch) > budget):
                    victim_request = policy.victim([m.request for m in state.batch])
                    victim = next(
                        m for m in state.batch
                        if m.request.request_id == victim_request.request_id)
                    state.batch.remove(victim)
                    victim.preemptions += 1
                    victim.restore_pending = True
                    state.preemptions += 1
                    advance(state.free_at)
                    push(victim.request)
            # --- one iteration: one step per member, (arrival, id) order,
            # per-pipeline-stage local clocks.
            iteration_start = state.free_at
            members = sorted(
                state.batch,
                key=lambda m: (m.request.arrival_s, m.request.request_id))
            stage_clock: Dict[int, float] = {}
            for member in members:
                step = member.profile.steps[member.step_index]
                clock = stage_clock.get(step.stage, iteration_start)
                switch_s = self._switch_seconds(state, member.request.tenant)
                state.last_tenant = member.request.tenant
                state.switch_s += switch_s
                member.switch_s += switch_s
                clock += switch_s
                if member.restore_pending:
                    clock += step.state_bytes / restore_bandwidth
                    member.restore_pending = False
                clock += step.seconds
                stage_clock[step.stage] = clock
                member.step_index += 1
                if member.first_token_s is None:
                    member.first_token_s = clock
                if member.step_index == len(member.profile.steps):
                    state.batch.remove(member)
                    state.completed += 1
                    del runtimes[member.request.request_id]
                    tokens = member.profile.total_tokens
                    entry = {
                        "tenant": member.request.tenant,
                        "arrival_s": member.request.arrival_s,
                        "start_s": member.start_s,
                        "finish_s": clock,
                        "switch_s": member.switch_s,
                        "ttft_s": member.first_token_s - member.request.arrival_s,
                        "tpot_s": ((clock - member.first_token_s) / tokens
                                   if tokens else 0.0),
                        "tokens": tokens,
                        "ttft_slo_s": member.request.ttft_slo_s,
                        "tpot_slo_s": member.request.tpot_slo_s,
                        "preemptions": member.preemptions,
                    }
                    completions.append(entry)
                    if scaler is not None:
                        window_served += 1
                        if not _slo_met(entry):
                            window_misses += 1
            state.free_at = max(stage_clock.values())
            state.busy_s += state.free_at - iteration_start
            if state.draining and not state.batch:
                # The last resident finished: the drain completes at the end
                # of this iteration and the capacity merges back.
                stop_group(state, state.free_at, state.pending_stop)

        if apolicy is not None:
            seg_end = max(
                entry["finish_s"]
                for entry in completions[-len(segment):])
            for state in states:
                if state.committed:
                    tally["group_seconds"] += seg_end - state.serving_since
            fleet = apolicy.min_groups
            timeline.append((seg_start, fleet))
            for time_s, delta in sorted(seg_changes):
                fleet += delta
                timeline.append((time_s, fleet))

    def _build_report(
        self,
        trace: RequestTrace,
        states: List[_NodeState],
        completions: List[dict],
        depth_area: float,
        depth_max: int,
        makespan: float,
        autoscale: Optional[AutoscaleStats] = None,
    ) -> ServeReport:
        """Fold the loop's bookkeeping into the :class:`ServeReport`."""
        node_stats = [
            NodeStats(
                node_id=state.node_id,
                completed=state.completed,
                busy_s=state.busy_s,
                utilization=state.busy_s / makespan if makespan else 0.0,
                tenant_switches=state.tenant_switches,
                switch_s=state.switch_s,
                preemptions=state.preemptions,
            )
            for state in states
        ]
        return build_report(
            trace_name=trace.name,
            scheduler_name=self.scheduler_name,
            num_nodes=self.system.num_nodes,
            completions=completions,
            node_stats=node_stats,
            queue_depth_mean=depth_area / makespan if makespan else 0.0,
            queue_depth_max=depth_max,
            batching=self.batching,
            autoscale=autoscale,
        )

    # ------------------------------------------------------- functional check
    def functional_smoke(self, trace: RequestTrace, size: int = 48, max_requests: int = 4) -> int:
        """Drive the first trace requests through the real MPAIS async path.

        For up to ``max_requests`` requests (one small ``size``-cubed FP64
        GEMM each, round-robined across nodes) the smoke test submits via
        ``MA_CFG`` (:meth:`~repro.core.runtime.MACORuntime.gemm_async`), polls
        ``MA_READ``, drains with ``MA_STATE`` and checks the result against
        NumPy.  Returns the number of verified GEMMs; raises on mismatch.
        """
        import numpy as np

        from repro.core.runtime import MACORuntime

        runtime = MACORuntime(system=self.system)
        host = self.system.host_memory
        rng = np.random.default_rng(0)
        verified = 0
        for request in trace.requests[:max_requests]:
            node_id = verified % self.system.num_nodes
            node = self.system.node(node_id)
            # The event loop leaves each node on its last tenant's ASID; the
            # smoke GEMM allocates in the node's default address space, so
            # switch back before submitting.
            if node.cpu.processes.current is not node.default_process:
                node.cpu.switch_process(node.default_process.asid)
            before = set(host.registered_bases())
            a = rng.standard_normal((size, size))
            b = rng.standard_normal((size, size))
            handle = runtime.gemm_async(a, b, node_id=node_id, precision=Precision.FP64)
            runtime.poll(handle)  # MA_READ must not release the entry
            result = runtime.wait(handle)
            if not np.allclose(result, a @ b):
                raise AssertionError(
                    f"functional GEMM mismatch for request {request.request_id} on node {node_id}"
                )
            # Nodes share one host memory but allocate from per-node address
            # spaces with identical bases, so release the scratch operands
            # before the next node reuses the same virtual range.
            for base in set(host.registered_bases()) - before:
                host.unregister(base)
            verified += 1
        return verified
